package webfront

import (
	"fmt"

	"ganglia/internal/gxml"
	"ganglia/internal/transport"
)

// Navigator walks the distributed monitoring tree by following
// authority pointers — "this pointer-based distributed tree forms the
// heart of our design" (paper §2.2). A coarse summary anywhere in the
// tree names the URL of the gmetad that owns the detail; the navigator
// resolves those URLs to query addresses and descends until it reaches
// the node that holds a cluster at full resolution.
type Navigator struct {
	// Network carries the queries.
	Network transport.Network
	// RootAddr is the query port of the tree root (or any entry
	// point).
	RootAddr string
	// Resolve maps an authority URL to a query-port address. In a real
	// deployment this is DNS plus a port convention; tests and the
	// in-process trees supply a table lookup.
	Resolve func(authority string) (addr string, ok bool)

	// MaxDepth bounds the descent; zero means 16.
	MaxDepth int
}

// Location describes where in the distributed tree a cluster was found.
type Location struct {
	// Addr is the query port of the owning gmetad.
	Addr string
	// Authority is the owning gmetad's URL ("" at the entry point).
	Authority string
	// Hops is the number of authority pointers followed.
	Hops int
	// Cluster is the full-resolution cluster data.
	Cluster *gxml.Cluster
}

// FindCluster locates the named cluster's full-resolution data,
// descending through grid summaries. The search is depth-first over the
// children advertised at each node, so the cost is one O(m) summary
// fetch per visited gmetad plus one full cluster fetch at the end —
// never a full-tree download.
func (n *Navigator) FindCluster(name string) (*Location, error) {
	maxDepth := n.MaxDepth
	if maxDepth == 0 {
		maxDepth = 16
	}
	visited := make(map[string]bool)
	loc, err := n.find(n.RootAddr, "", name, 0, maxDepth, visited)
	if err != nil {
		return nil, err
	}
	if loc == nil {
		return nil, fmt.Errorf("webfront: cluster %q not found in the monitoring tree", name)
	}
	return loc, nil
}

func (n *Navigator) find(addr, authority, name string, hops, maxDepth int, visited map[string]bool) (*Location, error) {
	if hops > maxDepth {
		return nil, fmt.Errorf("webfront: authority chain deeper than %d", maxDepth)
	}
	if visited[addr] {
		return nil, nil // authority loop; already searched
	}
	visited[addr] = true

	v := &Viewer{Network: n.Network, Addr: addr, QuerySupport: true}

	// Does this node hold the cluster at full resolution? A direct
	// cluster query answers from its hash DOM in O(1) lookups.
	if res, err := v.fetch(ClusterView, "/"+name); err == nil {
		if c := findCluster(res.Report, name); c != nil && len(c.Hosts) > 0 {
			return &Location{Addr: addr, Authority: authority, Hops: hops, Cluster: c}, nil
		}
	}

	// Otherwise enumerate this node's children from its root report
	// and follow each authority pointer.
	res, err := v.fetch(MetaView, "/")
	if err != nil {
		return nil, fmt.Errorf("webfront: query %s: %w", addr, err)
	}
	for _, g := range res.Report.Grids {
		for _, child := range g.Grids {
			childAddr, ok := n.Resolve(child.Authority)
			if !ok {
				continue // unreachable authority; keep searching siblings
			}
			loc, err := n.find(childAddr, child.Authority, name, hops+1, maxDepth, visited)
			if err != nil {
				return nil, err
			}
			if loc != nil {
				return loc, nil
			}
		}
	}
	return nil, nil
}
