package webfront

import (
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"ganglia/internal/clock"
	"ganglia/internal/gmetad"
	"ganglia/internal/tree"
)

var t0 = time.Unix(1_057_000_000, 0)

// buildTree stands up the fig-2 tree in the requested mode and returns
// a viewer pointed at the sdsc node — the vantage point of Table 1.
func buildTree(t testing.TB, mode gmetad.Mode, hosts int) (*tree.Instance, *Viewer) {
	t.Helper()
	clk := clock.NewVirtual(t0)
	inst, err := tree.Build(tree.FigureTwo(hosts), tree.BuildConfig{Mode: mode, Clock: clk})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(inst.Close)
	inst.PollRound(clk.Now())
	v := &Viewer{
		Network:      inst.Net,
		Addr:         tree.QueryAddr("sdsc"),
		QuerySupport: mode == gmetad.NLevel,
	}
	return inst, v
}

func TestMetaViewNLevel(t *testing.T) {
	_, v := buildTree(t, gmetad.NLevel, 10)
	res, err := v.Meta()
	if err != nil {
		t.Fatal(err)
	}
	// sdsc subtree: nashi-a, nashi-b local + attic grid (dust-a/b).
	if got := res.Summary.Hosts(); got != 40 {
		t.Errorf("meta hosts = %d, want 40", got)
	}
	if res.Bytes == 0 || res.Elapsed <= 0 {
		t.Errorf("timings: %+v", res)
	}
	if res.Report.Hosts() != 0 {
		t.Errorf("N-level meta view downloaded %d full-res hosts; want pure summary", res.Report.Hosts())
	}
}

func TestMetaViewOneLevel(t *testing.T) {
	_, v := buildTree(t, gmetad.OneLevel, 10)
	res, err := v.Meta()
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Summary.Hosts(); got != 40 {
		t.Errorf("meta hosts = %d, want 40", got)
	}
	// The 1-level viewer had to download the full tree to build the
	// same summary.
	if res.Report.Hosts() != 40 {
		t.Errorf("1-level meta view saw %d full-res hosts, want 40", res.Report.Hosts())
	}
}

func TestMetaViewsAgree(t *testing.T) {
	// Both designs must present the same data — only the cost differs.
	_, vN := buildTree(t, gmetad.NLevel, 8)
	resN, err := vN.Meta()
	if err != nil {
		t.Fatal(err)
	}
	_, v1 := buildTree(t, gmetad.OneLevel, 8)
	res1, err := v1.Meta()
	if err != nil {
		t.Fatal(err)
	}
	if resN.Summary.Hosts() != res1.Summary.Hosts() {
		t.Errorf("host counts differ: %d vs %d", resN.Summary.Hosts(), res1.Summary.Hosts())
	}
	sN, okN := resN.Summary.Sum("cpu_num")
	s1, ok1 := res1.Summary.Sum("cpu_num")
	if !okN || !ok1 || sN != s1 {
		t.Errorf("cpu_num sums differ: %v/%v vs %v/%v", sN, okN, s1, ok1)
	}
	// And the N-level fetch is much smaller.
	if resN.Bytes*4 > res1.Bytes {
		t.Errorf("N-level meta fetch %dB not much smaller than 1-level %dB", resN.Bytes, res1.Bytes)
	}
}

func TestClusterView(t *testing.T) {
	for _, mode := range []gmetad.Mode{gmetad.NLevel, gmetad.OneLevel} {
		_, v := buildTree(t, mode, 10)
		res, err := v.Cluster("nashi-a")
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if len(res.Cluster.Hosts) != 10 {
			t.Errorf("%v: cluster view hosts = %d", mode, len(res.Cluster.Hosts))
		}
	}
}

func TestClusterSummaryView(t *testing.T) {
	_, v := buildTree(t, gmetad.NLevel, 10)
	res, err := v.ClusterSummary("nashi-a")
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.Hosts() != 10 {
		t.Errorf("summary hosts = %d", res.Summary.Hosts())
	}
	if res.Report.Hosts() != 0 {
		t.Errorf("cluster-summary query downloaded %d full hosts", res.Report.Hosts())
	}
}

func TestHostView(t *testing.T) {
	for _, mode := range []gmetad.Mode{gmetad.NLevel, gmetad.OneLevel} {
		_, v := buildTree(t, mode, 10)
		res, err := v.Host("nashi-a", "compute-nashi-a-3")
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if res.Host == nil || res.Host.Name != "compute-nashi-a-3" {
			t.Fatalf("%v: host = %+v", mode, res.Host)
		}
		if len(res.Host.Metrics) < 30 {
			t.Errorf("%v: metrics = %d", mode, len(res.Host.Metrics))
		}
		if mode == gmetad.NLevel && res.Report.Hosts() != 1 {
			t.Errorf("N-level host view downloaded %d hosts, want 1", res.Report.Hosts())
		}
		if mode == gmetad.OneLevel && res.Report.Hosts() != 40 {
			t.Errorf("1-level host view downloaded %d hosts, want the full 40", res.Report.Hosts())
		}
	}
}

func TestViewerErrors(t *testing.T) {
	_, v := buildTree(t, gmetad.NLevel, 5)
	if _, err := v.Cluster("no-such-cluster"); err == nil {
		t.Error("missing cluster: no error")
	}
	if _, err := v.Host("nashi-a", "no-such-host"); err == nil {
		t.Error("missing host: no error")
	}
	vBad := &Viewer{Network: v.Network, Addr: "nowhere:1", QuerySupport: true}
	if _, err := vBad.Meta(); err == nil {
		t.Error("dead gmetad: no error")
	}
}

func TestViewString(t *testing.T) {
	if MetaView.String() != "Meta" || ClusterView.String() != "Cluster" || HostView.String() != "Host" {
		t.Error("view names wrong")
	}
}

func TestHTTPServerPages(t *testing.T) {
	_, v := buildTree(t, gmetad.NLevel, 6)
	srv := httptest.NewServer(NewServer(v))
	defer srv.Close()

	get := func(path string, wantStatus int) string {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != wantStatus {
			t.Fatalf("GET %s: status %d, want %d", path, resp.StatusCode, wantStatus)
		}
		var sb strings.Builder
		buf := make([]byte, 64*1024)
		for {
			n, err := resp.Body.Read(buf)
			sb.Write(buf[:n])
			if err != nil {
				break
			}
		}
		return sb.String()
	}

	body := get("/", 200)
	if !strings.Contains(body, "Grid Summary") || !strings.Contains(body, "load_one") {
		t.Errorf("meta page missing content:\n%.400s", body)
	}
	// sdsc subtree at 6 hosts/cluster: nashi-a/b + dust-a/b = 24 hosts.
	if !strings.Contains(body, "24 hosts up") {
		t.Errorf("meta page host count wrong:\n%.400s", body)
	}

	body = get("/cluster/nashi-a", 200)
	if !strings.Contains(body, "compute-nashi-a-0") {
		t.Errorf("cluster page missing hosts:\n%.400s", body)
	}

	body = get("/cluster/nashi-a/summary", 200)
	if !strings.Contains(body, "(summary)") {
		t.Errorf("cluster summary page:\n%.400s", body)
	}

	body = get("/host/nashi-a/compute-nashi-a-2", 200)
	if !strings.Contains(body, "cpu_num") {
		t.Errorf("host page missing metrics:\n%.400s", body)
	}

	get("/host/nashi-a/ghost-host", 502)
	get("/cluster/ghost-cluster", 502)
	get("/no-such-page", 404)
}

func BenchmarkHostViewNLevel(b *testing.B) {
	_, v := buildTree(b, gmetad.NLevel, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := v.Host("nashi-a", "compute-nashi-a-50"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHostViewOneLevel(b *testing.B) {
	_, v := buildTree(b, gmetad.OneLevel, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := v.Host("nashi-a", "compute-nashi-a-50"); err != nil {
			b.Fatal(err)
		}
	}
}

func TestGridsPage(t *testing.T) {
	_, v := buildTree(t, gmetad.NLevel, 5)
	srv := httptest.NewServer(NewServer(v))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/grids")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf := make([]byte, 64*1024)
	n, _ := resp.Body.Read(buf)
	body := string(buf[:n])
	// sdsc's local clusters and its child grid with authority link.
	for _, want := range []string{"nashi-a", "nashi-b", "attic", "cluster", "grid", "/cluster/nashi-a", "attic.example"} {
		if !strings.Contains(body, want) {
			t.Errorf("grids page missing %q:\n%.500s", want, body)
		}
	}
}
