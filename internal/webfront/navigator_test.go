package webfront

import (
	"io"
	"net/http/httptest"
	"strings"
	"testing"

	"ganglia/internal/clock"
	"ganglia/internal/gmetad"
	"ganglia/internal/tree"
)

// buildNavigator stands up the fig-2 tree and a Navigator entering at
// the root, with an authority resolver built from the topology.
func buildNavigator(t *testing.T, hosts int) (*tree.Instance, *Navigator) {
	t.Helper()
	clk := clock.NewVirtual(t0)
	topo := tree.FigureTwo(hosts)
	inst, err := tree.Build(topo, tree.BuildConfig{Mode: gmetad.NLevel, Clock: clk})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(inst.Close)
	inst.PollRound(clk.Now())

	byAuthority := map[string]string{}
	for _, name := range topo.GmetadNames() {
		byAuthority[tree.Authority(name)] = tree.QueryAddr(name)
	}
	nav := &Navigator{
		Network:  inst.Net,
		RootAddr: tree.QueryAddr("root"),
		Resolve: func(authority string) (string, bool) {
			addr, ok := byAuthority[authority]
			return addr, ok
		},
	}
	return inst, nav
}

func TestNavigatorFindsLocalCluster(t *testing.T) {
	_, nav := buildNavigator(t, 6)
	loc, err := nav.FindCluster("meteor-a") // root's own cluster
	if err != nil {
		t.Fatal(err)
	}
	if loc.Hops != 0 || loc.Addr != tree.QueryAddr("root") {
		t.Errorf("location: %+v", loc)
	}
	if len(loc.Cluster.Hosts) != 6 {
		t.Errorf("hosts = %d", len(loc.Cluster.Hosts))
	}
}

func TestNavigatorChasesAuthorityPointers(t *testing.T) {
	_, nav := buildNavigator(t, 6)
	// quark-a lives under physics: root → ucsd → physics, two hops.
	loc, err := nav.FindCluster("quark-a")
	if err != nil {
		t.Fatal(err)
	}
	if loc.Hops != 2 {
		t.Errorf("hops = %d, want 2", loc.Hops)
	}
	if loc.Addr != tree.QueryAddr("physics") {
		t.Errorf("addr = %s", loc.Addr)
	}
	if !strings.Contains(loc.Authority, "physics") {
		t.Errorf("authority = %q", loc.Authority)
	}
	if len(loc.Cluster.Hosts) != 6 {
		t.Errorf("full resolution not reached: %d hosts", len(loc.Cluster.Hosts))
	}
	// One hop for sdsc's cluster.
	loc, err = nav.FindCluster("nashi-b")
	if err != nil {
		t.Fatal(err)
	}
	if loc.Hops != 1 || loc.Addr != tree.QueryAddr("sdsc") {
		t.Errorf("nashi-b location: %+v", loc)
	}
}

func TestNavigatorUnknownCluster(t *testing.T) {
	_, nav := buildNavigator(t, 3)
	if _, err := nav.FindCluster("no-such-cluster"); err == nil {
		t.Error("unknown cluster found")
	}
}

func TestNavigatorUnresolvableAuthority(t *testing.T) {
	_, nav := buildNavigator(t, 3)
	// A resolver that knows nobody: local clusters still resolve, and
	// remote ones fail cleanly instead of erroring mid-walk.
	nav.Resolve = func(string) (string, bool) { return "", false }
	if _, err := nav.FindCluster("meteor-a"); err != nil {
		t.Errorf("local cluster should not need the resolver: %v", err)
	}
	if _, err := nav.FindCluster("quark-a"); err == nil {
		t.Error("remote cluster found without a resolver")
	}
}

func TestNavigatorDeadEntryPoint(t *testing.T) {
	inst, nav := buildNavigator(t, 3)
	nav.RootAddr = "nowhere:1"
	_ = inst
	if _, err := nav.FindCluster("meteor-a"); err == nil {
		t.Error("dead entry point did not error")
	}
}

func TestFindPage(t *testing.T) {
	inst, nav := buildNavigator(t, 4)
	v := &Viewer{Network: inst.Net, Addr: tree.QueryAddr("root"), QuerySupport: true}
	srv := NewServer(v)
	srv.SetNavigator(nav)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp, err := ts.Client().Get(ts.URL + "/find/quark-a")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status %d: %.200s", resp.StatusCode, body)
	}
	out := string(body)
	if !strings.Contains(out, "2 authority pointer") {
		t.Errorf("hops missing: %.300s", out)
	}
	if !strings.Contains(out, "compute-quark-a-0") {
		t.Errorf("hosts missing: %.300s", out)
	}

	resp, _ = ts.Client().Get(ts.URL + "/find/ghost")
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Errorf("ghost cluster status %d", resp.StatusCode)
	}

	// Without a navigator the route reports 501.
	plain := httptest.NewServer(NewServer(v))
	defer plain.Close()
	resp, _ = plain.Client().Get(plain.URL + "/find/quark-a")
	resp.Body.Close()
	if resp.StatusCode != 501 {
		t.Errorf("unconfigured /find status %d", resp.StatusCode)
	}
}
