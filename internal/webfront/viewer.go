// Package webfront implements the presentation layer: the viewer client
// whose download-and-parse cost Table 1 measures, and an HTTP server
// rendering the monitoring tree as web pages.
//
// The viewer "requests raw XML from a gmeta agent and parses it for
// display. The processing required to view the tree is therefore
// proportional to the size of the XML returned by the monitor" (§2.3).
// The paper's central presentation-layer result is that query support
// shrinks that XML: a viewer with QuerySupport fetches exactly the
// subtree a page needs, while the legacy viewer must fetch the full
// tree and "parse and discard much of the data it receives".
package webfront

import (
	"bufio"
	"fmt"
	"io"
	"time"

	"ganglia/internal/clock"
	"ganglia/internal/gxml"
	"ganglia/internal/summary"
	"ganglia/internal/transport"
)

// DefaultMaxResponseBytes caps one gmetad response download. A viewer
// talks to a trusted monitor, but the O(m) edge bound should hold on
// the presentation edge too: a garbled or hostile endpoint must not be
// able to grow the viewer's memory without limit.
const DefaultMaxResponseBytes = 64 << 20

// View names the three central web views of the paper's Table 1.
type View int

const (
	// MetaView summarizes all monitored clusters.
	MetaView View = iota
	// ClusterView describes one cluster at full resolution.
	ClusterView
	// HostView shows all information known about a single host.
	HostView
)

// String names the view as Table 1 does.
func (v View) String() string {
	switch v {
	case MetaView:
		return "Meta"
	case ClusterView:
		return "Cluster"
	case HostView:
		return "Host"
	}
	return fmt.Sprintf("view(%d)", int(v))
}

// Viewer fetches and parses gmetad XML on behalf of a page render.
type Viewer struct {
	// Network and Addr locate the gmetad's query port.
	Network transport.Network
	Addr    string
	// QuerySupport selects the N-level behaviour: request the specific
	// subtree each view needs. Without it the viewer emulates the
	// 1-level frontend: fetch the entire tree every time and filter or
	// summarize client-side.
	QuerySupport bool
	// Clock positions the Table 1 timings; defaults to the system
	// clock. Experiments inject a virtual clock so timing fields stay
	// deterministic.
	Clock clock.Clock
	// MaxResponseBytes bounds one response download; defaults to
	// DefaultMaxResponseBytes, negative disables the cap.
	MaxResponseBytes int64
}

// now reads the viewer's clock.
func (v *Viewer) now() time.Time {
	if v.Clock != nil {
		return v.Clock.Now()
	}
	return clock.Real{}.Now()
}

// Result is one fetch: the parsed report plus the timings Table 1 rows
// are made of.
type Result struct {
	View View
	// Elapsed spans socket connect through XML parse completion —
	// exactly where the paper inserted its gettimeofday calls (§3.1).
	Elapsed time.Duration
	// PostProcess is client-side work after the parse (extracting the
	// wanted subtree, or recomputing summaries in the 1-level viewer).
	PostProcess time.Duration
	// Bytes is the XML volume downloaded.
	Bytes int64

	Report  *gxml.Report
	Summary *summary.Summary // populated for MetaView
	Cluster *gxml.Cluster    // populated for ClusterView and HostView
	Host    *gxml.Host       // populated for HostView
}

// fetch performs one query round-trip and parse.
func (v *Viewer) fetch(view View, q string) (*Result, error) {
	start := v.now()
	conn, err := v.Network.Dial(v.Addr)
	if err != nil {
		return nil, fmt.Errorf("webfront: dial %s: %w", v.Addr, err)
	}
	defer conn.Close()
	if _, err := io.WriteString(conn, q+"\n"); err != nil {
		return nil, fmt.Errorf("webfront: send query: %w", err)
	}
	max := v.MaxResponseBytes
	if max == 0 {
		max = DefaultMaxResponseBytes
	}
	var src io.Reader = conn
	if max > 0 {
		src = io.LimitReader(conn, max)
	}
	cr := &countingReader{r: bufio.NewReaderSize(src, 64*1024)}
	rep, err := gxml.Parse(cr)
	elapsed := v.now().Sub(start)
	if err != nil {
		return nil, fmt.Errorf("webfront: parse response to %q: %w", q, err)
	}
	return &Result{View: view, Elapsed: elapsed, Bytes: cr.n, Report: rep}, nil
}

// Meta renders the data for the meta view: one summary over every
// monitored cluster. The N-level viewer "obtains its summaries directly
// from the gmeta daemon"; the 1-level viewer "generates its own
// summaries" from the full tree (§3.3).
func (v *Viewer) Meta() (*Result, error) {
	if v.QuerySupport {
		res, err := v.fetch(MetaView, "/?filter=summary")
		if err != nil {
			return nil, err
		}
		post := v.now()
		total := summary.New()
		for _, g := range res.Report.Grids {
			total.Merge(g.Summarize())
		}
		res.Summary = total
		res.PostProcess = v.now().Sub(post)
		return res, nil
	}
	res, err := v.fetch(MetaView, "/")
	if err != nil {
		return nil, err
	}
	post := v.now()
	total := summary.New()
	for _, c := range res.Report.Clusters {
		total.Merge(c.Summarize())
	}
	for _, g := range res.Report.Grids {
		total.Merge(g.Summarize())
	}
	res.Summary = total
	res.PostProcess = v.now().Sub(post)
	return res, nil
}

// Cluster renders one cluster at full resolution.
func (v *Viewer) Cluster(name string) (*Result, error) {
	q := "/"
	if v.QuerySupport {
		q = "/" + name
	}
	res, err := v.fetch(ClusterView, q)
	if err != nil {
		return nil, err
	}
	post := v.now()
	c := findCluster(res.Report, name)
	if c == nil {
		return nil, fmt.Errorf("webfront: cluster %q not in report", name)
	}
	res.Cluster = c
	res.PostProcess = v.now().Sub(post)
	return res, nil
}

// ClusterSummary renders the low-resolution overview of one cluster —
// the filter the paper found "useful when examining very large
// clusters" (§2.3.2). Without query support it degrades to a full fetch
// plus client-side reduction.
func (v *Viewer) ClusterSummary(name string) (*Result, error) {
	q := "/"
	if v.QuerySupport {
		q = "/" + name + "?filter=summary"
	}
	res, err := v.fetch(ClusterView, q)
	if err != nil {
		return nil, err
	}
	post := v.now()
	c := findCluster(res.Report, name)
	if c == nil {
		return nil, fmt.Errorf("webfront: cluster %q not in report", name)
	}
	res.Cluster = c
	res.Summary = c.Summarize()
	res.PostProcess = v.now().Sub(post)
	return res, nil
}

// Host renders everything known about one host. This view gains the
// most from query support: the 1-level viewer "must parse and discard
// data about all other hosts in the cluster" (§3.3).
func (v *Viewer) Host(cluster, host string) (*Result, error) {
	q := "/"
	if v.QuerySupport {
		q = "/" + cluster + "/" + host + "/"
	}
	res, err := v.fetch(HostView, q)
	if err != nil {
		return nil, err
	}
	post := v.now()
	c := findCluster(res.Report, cluster)
	if c == nil {
		return nil, fmt.Errorf("webfront: cluster %q not in report", cluster)
	}
	for _, h := range c.Hosts {
		if h.Name == host {
			res.Cluster = c
			res.Host = h
			res.PostProcess = v.now().Sub(post)
			return res, nil
		}
	}
	return nil, fmt.Errorf("webfront: host %q not in cluster %q", host, cluster)
}

// History fetches a metric's archived series (?filter=history). It
// requires query support: the legacy 1-level daemon exposes no archive
// queries.
func (v *Viewer) History(cluster, host, metricName string) (*gxml.History, error) {
	if !v.QuerySupport {
		return nil, fmt.Errorf("webfront: history requires the N-level query engine")
	}
	res, err := v.fetch(HostView, "/"+cluster+"/"+host+"/"+metricName+"?filter=history")
	if err != nil {
		return nil, err
	}
	if len(res.Report.Histories) == 0 {
		return nil, fmt.Errorf("webfront: no history for %s/%s/%s", cluster, host, metricName)
	}
	return res.Report.Histories[0], nil
}

// findCluster locates a cluster anywhere in a report tree.
func findCluster(rep *gxml.Report, name string) *gxml.Cluster {
	for _, c := range rep.Clusters {
		if c.Name == name {
			return c
		}
	}
	var walk func(g *gxml.Grid) *gxml.Cluster
	walk = func(g *gxml.Grid) *gxml.Cluster {
		for _, c := range g.Clusters {
			if c.Name == name {
				return c
			}
		}
		for _, child := range g.Grids {
			if c := walk(child); c != nil {
				return c
			}
		}
		return nil
	}
	for _, g := range rep.Grids {
		if c := walk(g); c != nil {
			return c
		}
	}
	return nil
}

type countingReader struct {
	r io.Reader
	n int64
}

func (cr *countingReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	cr.n += int64(n)
	return n, err
}
