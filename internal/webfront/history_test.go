package webfront

import (
	"io"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"ganglia/internal/clock"
	"ganglia/internal/gmetad"
	"ganglia/internal/gxml"
	"ganglia/internal/rrd"
	"ganglia/internal/tree"
)

// buildArchivingTree is buildTree with archives enabled on every node.
func buildArchivingTree(t testing.TB, rounds int) (*tree.Instance, *Viewer) {
	t.Helper()
	clk := clock.NewVirtual(t0)
	inst, err := tree.Build(tree.FigureTwo(4), tree.BuildConfig{
		Mode:    gmetad.NLevel,
		Archive: true,
		ArchiveSpec: rrd.Spec{
			Step:      15 * time.Second,
			Heartbeat: 60 * time.Second,
			Archives:  []rrd.ArchiveSpec{{Step: 15 * time.Second, Rows: 32, CF: rrd.Average}},
		},
		Clock: clk,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(inst.Close)
	for i := 0; i < rounds; i++ {
		clk.Advance(15 * time.Second)
		inst.PollRound(clk.Now())
	}
	return inst, &Viewer{
		Network:      inst.Net,
		Addr:         tree.QueryAddr("sdsc"),
		QuerySupport: true,
	}
}

func TestViewerHistory(t *testing.T) {
	_, v := buildArchivingTree(t, 8)
	h, err := v.History("nashi-a", "compute-nashi-a-0", "load_one")
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Points) < 4 {
		t.Fatalf("points = %d", len(h.Points))
	}
	if h.Metric != "load_one" || h.CF != "AVERAGE" {
		t.Errorf("history identity: %+v", h)
	}
}

func TestViewerHistoryRequiresQuerySupport(t *testing.T) {
	_, v := buildArchivingTree(t, 2)
	v.QuerySupport = false
	if _, err := v.History("nashi-a", "compute-nashi-a-0", "load_one"); err == nil {
		t.Error("history without query support succeeded")
	}
}

func TestSparkline(t *testing.T) {
	h := &gxml.History{Points: []gxml.HistoryPoint{
		{Time: 1, Value: 0}, {Time: 2, Value: 5}, {Time: 3, Value: 10},
	}}
	s := sparkline(h)
	if len([]rune(s)) != 3 {
		t.Fatalf("sparkline %q", s)
	}
	runes := []rune(s)
	if runes[0] != '▁' || runes[2] != '█' {
		t.Errorf("scaling wrong: %q", s)
	}
	// Unknown points render as spaces.
	h.Points[1].Value = nan()
	if runes := []rune(sparkline(h)); runes[1] != ' ' {
		t.Errorf("unknown point: %q", string(runes))
	}
	// Constant series does not divide by zero.
	h2 := &gxml.History{Points: []gxml.HistoryPoint{{Time: 1, Value: 7}, {Time: 2, Value: 7}}}
	if s := sparkline(h2); len([]rune(s)) != 2 {
		t.Errorf("constant series: %q", s)
	}
	// All-unknown and empty series give nothing.
	h3 := &gxml.History{Points: []gxml.HistoryPoint{{Time: 1, Value: nan()}}}
	if sparkline(h3) != "" {
		t.Error("all-unknown series rendered")
	}
	if sparkline(&gxml.History{}) != "" {
		t.Error("empty series rendered")
	}
}

func nan() float64 {
	var z float64
	return z / z
}

func TestHostPageShowsHistory(t *testing.T) {
	_, v := buildArchivingTree(t, 8)
	srv := httptest.NewServer(NewServer(v))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/host/nashi-a/compute-nashi-a-0")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "load_one:") {
		t.Errorf("host page missing history decoration:\n%.300s", body)
	}
}
