package fabric

import (
	"strconv"
	"testing"
)

// canonicalStatsd re-serializes a parsed stat into the canonical line
// form. It is the inverse the fuzzer holds ParseStatsd to: parse →
// serialize → parse must be a fixed point.
func canonicalStatsd(s Stat) []byte {
	out := []byte(s.Bucket)
	out = append(out, ':')
	if s.GaugeDelta && s.Value >= 0 {
		out = append(out, '+')
	}
	out = strconv.AppendFloat(out, s.Value, 'g', -1, 64)
	out = append(out, '|')
	out = append(out, s.Kind.String()...)
	if s.SampleRate != 1 {
		out = append(out, '|', '@')
		out = strconv.AppendFloat(out, s.SampleRate, 'g', -1, 64)
	}
	return out
}

func FuzzParseStatsd(f *testing.F) {
	seeds := []string{
		"req.count:1|c",
		"req.count:7|c|@0.1",
		"mem_free:1024|g",
		"mem_free:+5|g",
		"mem_free:-3.5|g",
		"rpc.latency:12.75|ms",
		"a:1|c\nb:2|g",
		// Truncated and garbled shapes, as chaos (FaultTruncate,
		// FaultGarble) would leave them.
		"req.cou",
		"req.count:7|",
		"req.count:7|c|@",
		"req\x00count:1|c",
		"req.count:1|\xffc",
		":::|||@@@",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, line []byte) {
		s, err := ParseStatsd(line)
		if err != nil {
			return
		}
		// Accepted lines must be fully specified and re-serializable.
		if s.Bucket == "" || s.SampleRate <= 0 || s.SampleRate > 1 {
			t.Fatalf("accepted under-specified stat %+v from %q", s, line)
		}
		if s.Value != s.Value {
			t.Fatalf("accepted NaN from %q", line)
		}
		again, err := ParseStatsd(canonicalStatsd(s))
		if err != nil {
			t.Fatalf("canonical form of %q (%q) does not reparse: %v",
				line, canonicalStatsd(s), err)
		}
		if again != s {
			t.Fatalf("parse(%q) = %+v, but canonical reparse = %+v", line, s, again)
		}
	})
}

func FuzzCarbonRoundTrip(f *testing.F) {
	seeds := []string{
		"meteor.n0.load_one 0.25 1057000000",
		"ganglia.SDSC.meteor.n1.req.count 42 1057000000",
		"a 0 0",
		"x.y -12345.6789 42\n",
		"p 1e300 9999999999",
		// Truncated and garbled shapes.
		"meteor.n0.load",
		"meteor.n0.load_one 0.2",
		"meteor.n0.load_one 0.25 1057000000 trailing",
		"met\x7feor.n0 1 2",
		"   ",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, line []byte) {
		p, err := ParseCarbon(line)
		if err != nil {
			return
		}
		if p.Path == "" || p.Unix < 0 || p.Value != p.Value {
			t.Fatalf("accepted malformed point %+v from %q", p, line)
		}
		encoded := AppendCarbon(nil, p)
		again, err := ParseCarbon(encoded)
		if err != nil {
			t.Fatalf("re-encoding of %q (%q) does not reparse: %v", line, encoded, err)
		}
		if again != p {
			t.Fatalf("parse(%q) = %+v, but round trip = %+v", line, p, again)
		}
	})
}

// FuzzIngestStatsd drives whole hostile datagrams through the full
// ingest path: the hub must neither panic nor lose count (every line is
// either received or a parse error).
func FuzzIngestStatsd(f *testing.F) {
	f.Add([]byte("a:1|c\nb:2|g\nc:3|ms\n"))
	f.Add([]byte("a:1|c\n<garbage>\r\nb:2|g"))
	f.Add([]byte("\n\n\n"))
	f.Add([]byte("x\xff\x00y:1|c\na:2|c"))
	f.Fuzz(func(t *testing.T, pkt []byte) {
		h, clk := newTestHub(t)
		h.IngestStatsd(pkt)
		lines := 0
		splitLines(pkt, func([]byte) { lines++ })
		s := h.Accounting().Snapshot()
		if s.ReceivedLines+s.ParseErrors != int64(lines) {
			t.Fatalf("lines=%d but received=%d parseErrors=%d", lines, s.ReceivedLines, s.ParseErrors)
		}
		h.Flush(clk.Now())
		var sink nullWriter
		if err := h.WriteXML(&sink); err != nil {
			t.Fatalf("WriteXML after hostile ingest: %v", err)
		}
	})
}

type nullWriter struct{}

func (nullWriter) Write(p []byte) (int, error) { return len(p), nil }
