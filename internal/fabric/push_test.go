package fabric

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func postPush(t *testing.T, h *Hub, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/push", strings.NewReader(body))
	rec := httptest.NewRecorder()
	h.PushHandler().ServeHTTP(rec, req)
	return rec
}

func TestPushSingleObject(t *testing.T) {
	h, clk := newTestHub(t)
	rec := postPush(t, h, `{"name":"disk_free","value":512.5,"units":"GB"}`)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("status = %d, body %q", rec.Code, rec.Body.String())
	}
	if got := rec.Body.String(); got != "{\"accepted\":1}\n" {
		t.Errorf("body = %q", got)
	}
	h.Flush(clk.Now())
	xml := hubXML(t, h)
	if !strings.Contains(xml, `NAME="disk_free" VAL="512.50" TYPE="double" UNITS="GB"`) ||
		!strings.Contains(xml, `SOURCE="push"`) {
		t.Errorf("push metric missing:\n%s", xml)
	}
}

func TestPushArrayWithForeignHost(t *testing.T) {
	h, clk := newTestHub(t)
	rec := postPush(t, h,
		`[{"host":"edge-0","ip":"10.9.0.2","name":"temp","value":40},
		  {"name":"temp","value":41}]`)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("status = %d, body %q", rec.Code, rec.Body.String())
	}
	h.Flush(clk.Now())
	xml := hubXML(t, h)
	if !strings.Contains(xml, `<HOST NAME="edge-0" IP="10.9.0.2"`) {
		t.Errorf("foreign host missing:\n%s", xml)
	}
	if !strings.Contains(xml, `<HOST NAME="hub-0"`) {
		t.Errorf("default host missing:\n%s", xml)
	}
	s := h.Accounting().Snapshot()
	if s.PushRequests != 1 || s.PushMetrics != 2 || s.PushRejects != 0 {
		t.Errorf("accounting: %+v", s)
	}
}

func TestPushRejections(t *testing.T) {
	h, _ := newTestHub(t)
	cases := []struct {
		name   string
		method string
		body   string
		status int
	}{
		{"get", http.MethodGet, `{}`, http.StatusMethodNotAllowed},
		{"empty", http.MethodPost, ``, http.StatusBadRequest},
		{"bad json", http.MethodPost, `{`, http.StatusBadRequest},
		{"empty array", http.MethodPost, `[]`, http.StatusBadRequest},
		{"no name", http.MethodPost, `{"value":1}`, http.StatusBadRequest},
		{"bad name", http.MethodPost, `{"name":"<x>","value":1}`, http.StatusBadRequest},
		{"control host", http.MethodPost, `{"host":"a\u0001b","name":"m","value":1}`, http.StatusBadRequest},
		{"oversize", http.MethodPost, `[` + strings.Repeat(" ", MaxPushBytes) + `]`, http.StatusRequestEntityTooLarge},
	}
	for _, c := range cases {
		req := httptest.NewRequest(c.method, "/push", strings.NewReader(c.body))
		rec := httptest.NewRecorder()
		h.PushHandler().ServeHTTP(rec, req)
		if rec.Code != c.status {
			t.Errorf("%s: status = %d, want %d", c.name, rec.Code, c.status)
		}
	}
	s := h.Accounting().Snapshot()
	if s.PushRejects != int64(len(cases)) || s.PushMetrics != 0 {
		t.Errorf("accounting: %+v", s)
	}
}

func TestPushBatchIsAllOrNothing(t *testing.T) {
	h, clk := newTestHub(t)
	rec := postPush(t, h, `[{"name":"ok","value":1},{"name":"bad name!","value":2}]`)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("status = %d", rec.Code)
	}
	h.Flush(clk.Now())
	if xml := hubXML(t, h); strings.Contains(xml, `NAME="ok"`) {
		t.Errorf("half a rejected batch landed:\n%s", xml)
	}
}
