// Package fabric is the multi-protocol ingest/egress layer of the
// monitoring hub: receivers admit metrics that never touched a gmond
// multicast channel, sinks re-export the aggregation tree to foreign
// consumers.
//
// The paper's federation model assumes exactly one wire format — XML
// over TCP between gmond and gmetad. That is the right spine for a
// monitoring *tree*, but it shuts out two workload shapes the related
// work cares about: high-rate push producers (statsd-style counters and
// timers, the radiotelescope workload of Barnes/Armitage) and foreign
// time-series consumers (Graphite/Carbon, Prometheus). This package
// opens both doors without inventing a second metric pool:
//
//   - Receivers (Hub): a statsd UDP line-protocol listener and an
//     HTTP/JSON push endpoint. Everything they admit is translated into
//     ordinary gmond announcements — the XDR packets of
//     metric.Announcement — and delivered through an in-process bus
//     into a mute gmond agent. The hub therefore *is* a cluster, with
//     soft-state lifetimes, heartbeats and deterministic XML identical
//     to a native one; a gmetad polls it over the unchanged gmond TCP
//     contract, and the equivalence tests hold the two paths to
//     byte-identical served XML.
//   - Sinks (SinkManager): Graphite/Carbon plaintext over TCP and a
//     Prometheus text-exposition endpoint. The gmetad poll path offers
//     every numeric metric it publishes as a flattened Sample; each
//     sink gets its own bounded queue with drop-oldest backpressure and
//     a panic-isolated flusher goroutine, so a slow or dead consumer
//     costs bounded memory and counted drops, never daemon health.
//
// All I/O obeys the repository's lint invariants: time comes from an
// injected clock (deadline arguments excepted), every goroutine is
// panic-isolated, and every reader rooted in a connection is capped.
package fabric

import (
	"sync/atomic"
)

// Accounting tracks the fabric's ingest and egress work, in the same
// style as gmetad.Accounting: lock-free counters a status loop or test
// snapshots and subtracts.
type Accounting struct {
	receivedLines  atomic.Int64
	parseErrors    atomic.Int64
	statsdPackets  atomic.Int64
	pushRequests   atomic.Int64
	pushRejects    atomic.Int64
	pushMetrics    atomic.Int64
	flushes        atomic.Int64
	announcements  atomic.Int64
	receiverPanics atomic.Int64

	sinkFlushes    atomic.Int64
	sinkFlushFails atomic.Int64
	sinkDrops      atomic.Int64
	queueHighWater atomic.Int64
	sinkPanics     atomic.Int64
	offered        atomic.Int64
}

// Snapshot is a point-in-time copy of the counters.
type Snapshot struct {
	// ReceivedLines counts statsd lines accepted by the parser;
	// ParseErrors lines rejected by it; StatsdPackets whole datagrams
	// ingested (one packet carries one or more lines).
	ReceivedLines int64
	ParseErrors   int64
	StatsdPackets int64

	// PushRequests counts HTTP push requests accepted, PushRejects
	// requests refused (bad method, body or JSON), and PushMetrics
	// individual metrics admitted through the push endpoint.
	PushRequests int64
	PushRejects  int64
	PushMetrics  int64

	// Flushes counts hub aggregation flushes and Announcements the
	// bus packets they emitted (heartbeats included). ReceiverPanics
	// counts receiver goroutines recovered from a panic.
	Flushes        int64
	Announcements  int64
	ReceiverPanics int64

	// SinkFlushes counts successful sink batch deliveries and
	// SinkFlushFails failed ones (their samples are dropped and counted
	// in SinkDrops — a failed delivery is never silent). SinkDrops
	// totals samples lost to backpressure or failed flushes.
	// QueueHighWater is the deepest any sink queue has been;
	// SinkPanics counts flusher goroutines recovered from a panic, and
	// Offered the samples handed to the manager before any dropping.
	SinkFlushes    int64
	SinkFlushFails int64
	SinkDrops      int64
	QueueHighWater int64
	SinkPanics     int64
	Offered        int64
}

// Snapshot returns a copy of the current counters.
func (a *Accounting) Snapshot() Snapshot {
	return Snapshot{
		ReceivedLines: a.receivedLines.Load(),
		ParseErrors:   a.parseErrors.Load(),
		StatsdPackets: a.statsdPackets.Load(),

		PushRequests: a.pushRequests.Load(),
		PushRejects:  a.pushRejects.Load(),
		PushMetrics:  a.pushMetrics.Load(),

		Flushes:        a.flushes.Load(),
		Announcements:  a.announcements.Load(),
		ReceiverPanics: a.receiverPanics.Load(),

		SinkFlushes:    a.sinkFlushes.Load(),
		SinkFlushFails: a.sinkFlushFails.Load(),
		SinkDrops:      a.sinkDrops.Load(),
		QueueHighWater: a.queueHighWater.Load(),
		SinkPanics:     a.sinkPanics.Load(),
		Offered:        a.offered.Load(),
	}
}

// Sub returns s - o, the work done between two snapshots. High-water
// marks are not differenced: the later mark stands.
func (s Snapshot) Sub(o Snapshot) Snapshot {
	return Snapshot{
		ReceivedLines: s.ReceivedLines - o.ReceivedLines,
		ParseErrors:   s.ParseErrors - o.ParseErrors,
		StatsdPackets: s.StatsdPackets - o.StatsdPackets,

		PushRequests: s.PushRequests - o.PushRequests,
		PushRejects:  s.PushRejects - o.PushRejects,
		PushMetrics:  s.PushMetrics - o.PushMetrics,

		Flushes:        s.Flushes - o.Flushes,
		Announcements:  s.Announcements - o.Announcements,
		ReceiverPanics: s.ReceiverPanics - o.ReceiverPanics,

		SinkFlushes:    s.SinkFlushes - o.SinkFlushes,
		SinkFlushFails: s.SinkFlushFails - o.SinkFlushFails,
		SinkDrops:      s.SinkDrops - o.SinkDrops,
		QueueHighWater: s.QueueHighWater,
		SinkPanics:     s.SinkPanics - o.SinkPanics,
		Offered:        s.Offered - o.Offered,
	}
}

// raiseHighWater lifts the high-water mark to at least depth.
func (a *Accounting) raiseHighWater(depth int64) {
	for {
		cur := a.queueHighWater.Load()
		if depth <= cur || a.queueHighWater.CompareAndSwap(cur, depth) {
			return
		}
	}
}
