package fabric

import (
	"fmt"
	"net"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// PromSink retains the latest value of every series it is offered and
// exposes them in the Prometheus text exposition format. It is both a
// Sink (the manager pushes samples in) and an http.Handler (a scraper
// pulls the current state out), bridging the tree's push federation to
// Prometheus's pull model.
type PromSink struct {
	// MaxSeries bounds retained series; past it, samples for new series
	// fail the Flush (so the manager counts them as drops rather than
	// the sink growing without bound). Zero means DefaultPromMaxSeries.
	MaxSeries int

	mu     sync.Mutex
	series map[promKey]promPoint
}

// DefaultPromMaxSeries bounds a PromSink's retained series by default.
const DefaultPromMaxSeries = 65536

type promKey struct {
	grid    string
	cluster string
	host    string
	metric  string
}

type promPoint struct {
	value float64
	when  time.Time
}

// Name implements Sink.
func (p *PromSink) Name() string { return "prometheus" }

// Flush implements Sink: retain the latest point of each series. It
// fails only when the series cap refuses new samples.
func (p *PromSink) Flush(batch []Sample) error {
	max := p.MaxSeries
	if max <= 0 {
		max = DefaultPromMaxSeries
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.series == nil {
		p.series = make(map[promKey]promPoint, len(batch))
	}
	refused := 0
	for _, s := range batch {
		k := promKey{grid: s.Grid, cluster: s.Cluster, host: s.Host, metric: s.Metric}
		if _, ok := p.series[k]; !ok && len(p.series) >= max {
			refused++
			continue
		}
		p.series[k] = promPoint{value: s.Value, when: s.When}
	}
	if refused > 0 {
		return fmt.Errorf("fabric: prometheus sink full (%d series): refused %d samples", max, refused)
	}
	return nil
}

// promName turns a ganglia metric name into a legal Prometheus metric
// name: a "ganglia_" prefix, with every byte outside [a-zA-Z0-9_:]
// replaced by '_'.
func promName(metric string) string {
	var b strings.Builder
	b.Grow(len("ganglia_") + len(metric))
	b.WriteString("ganglia_")
	for i := 0; i < len(metric); i++ {
		c := metric[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_', c == ':':
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promLabel escapes a label value per the exposition format: backslash,
// double quote and newline.
func promLabel(v string) string {
	var b strings.Builder
	b.Grow(len(v))
	for i := 0; i < len(v); i++ {
		switch v[i] {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(v[i])
		}
	}
	return b.String()
}

// ServeHTTP implements http.Handler: the /metrics endpoint. Output is
// deterministic — series sorted by metric name, then grid, cluster and
// host — so two scrapes of the same state are byte-identical.
func (p *PromSink) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	p.mu.Lock()
	keys := make([]promKey, 0, len(p.series))
	for k := range p.series {
		keys = append(keys, k)
	}
	points := make(map[promKey]promPoint, len(keys))
	for _, k := range keys {
		points[k] = p.series[k]
	}
	p.mu.Unlock()

	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.metric != b.metric {
			return a.metric < b.metric
		}
		if a.grid != b.grid {
			return a.grid < b.grid
		}
		if a.cluster != b.cluster {
			return a.cluster < b.cluster
		}
		return a.host < b.host
	})

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	var buf []byte
	lastName := ""
	for _, k := range keys {
		name := promName(k.metric)
		if name != lastName {
			buf = append(buf, "# HELP "...)
			buf = append(buf, name...)
			buf = append(buf, " Ganglia metric "...)
			buf = append(buf, k.metric...)
			buf = append(buf, "\n# TYPE "...)
			buf = append(buf, name...)
			buf = append(buf, " untyped\n"...)
			lastName = name
		}
		buf = append(buf, name...)
		buf = append(buf, '{')
		if k.grid != "" {
			buf = append(buf, `grid="`...)
			buf = append(buf, promLabel(k.grid)...)
			buf = append(buf, `",`...)
		}
		buf = append(buf, `cluster="`...)
		buf = append(buf, promLabel(k.cluster)...)
		buf = append(buf, `",host="`...)
		buf = append(buf, promLabel(k.host)...)
		buf = append(buf, `"} `...)
		pt := points[k]
		buf = strconv.AppendFloat(buf, pt.value, 'g', -1, 64)
		buf = append(buf, ' ')
		buf = strconv.AppendInt(buf, pt.when.UnixMilli(), 10)
		buf = append(buf, '\n')
	}
	_, _ = w.Write(buf)
}

// ServeMetrics serves the exposition endpoint on l until the listener
// closes. The returned error is http.Server.Serve's.
func (p *PromSink) ServeMetrics(l net.Listener) error {
	mux := http.NewServeMux()
	mux.Handle("/metrics", p)
	srv := &http.Server{
		Handler:           mux,
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       time.Minute,
	}
	return srv.Serve(l)
}
