package fabric

import (
	"bufio"
	"errors"
	"io"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"ganglia/internal/transport"
)

func TestCarbonRoundTrip(t *testing.T) {
	points := []CarbonPoint{
		{Path: "a", Value: 0, Unix: 0},
		{Path: "meteor.compute-0-0.load_one", Value: 0.25, Unix: 1_057_000_000},
		{Path: "g.c.h.m", Value: -12345.6789, Unix: 42},
		{Path: "x.y", Value: 1e300, Unix: 9_999_999_999},
	}
	for _, p := range points {
		line := AppendCarbon(nil, p)
		got, err := ParseCarbon(line)
		if err != nil {
			t.Errorf("ParseCarbon(%q): %v", line, err)
			continue
		}
		if got != p {
			t.Errorf("round trip %q: got %+v, want %+v", line, got, p)
		}
	}
}

func TestParseCarbonInvalid(t *testing.T) {
	cases := []string{
		"",                                 // empty
		"a 1",                              // missing timestamp
		"a 1 2 3",                          // extra field
		"a b 2",                            // non-numeric value
		"a NaN 2",                          // non-finite value
		"a 1 -5",                           // negative timestamp
		"a 1 b",                            // non-numeric timestamp
		".a 1 2",                           // leading separator
		"a. 1 2",                           // trailing separator
		"a..b 1 2",                         // empty component
		"a b 1 2",                          // space splits the path
		"p\x01q 1 2",                       // control byte in path
		strings.Repeat("a", 1030) + " 1 2", // over maxCarbonLine
	}
	for _, line := range cases {
		if _, err := ParseCarbon([]byte(line)); err == nil {
			t.Errorf("ParseCarbon(%q): want error", line)
		} else if !errors.Is(err, ErrCarbon) {
			t.Errorf("ParseCarbon(%q): error %v does not wrap ErrCarbon", line, err)
		}
	}
}

func TestCarbonPath(t *testing.T) {
	cases := []struct {
		prefix string
		s      Sample
		want   string
	}{
		{"", Sample{Cluster: "meteor", Host: "compute-0-0", Metric: "load_one"},
			"meteor.compute-0-0.load_one"},
		{"ganglia", Sample{Grid: "SDSC", Cluster: "meteor", Host: "n0", Metric: "req.count"},
			"ganglia.SDSC.meteor.n0.req.count"},
		// A dot inside a host name must not mint extra path components.
		{"", Sample{Cluster: "lab cluster", Host: "node.sub.example", Metric: "cpu"},
			"lab_cluster.node_sub_example.cpu"},
		{"", Sample{Cluster: "", Host: "", Metric: ""}, "_._._"},
	}
	for _, c := range cases {
		if got := CarbonPath(c.prefix, c.s); got != c.want {
			t.Errorf("CarbonPath(%q, %+v) = %q, want %q", c.prefix, c.s, got, c.want)
		}
		// Every path the flattener emits must survive the codec.
		line := AppendCarbon(nil, CarbonPoint{Path: CarbonPath(c.prefix, c.s), Value: 1, Unix: 2})
		if _, err := ParseCarbon(line); err != nil {
			t.Errorf("emitted path %q does not reparse: %v", line, err)
		}
	}
}

// carbonCollector accepts connections on l and collects every line
// written to them.
type carbonCollector struct {
	mu    sync.Mutex
	lines []string
}

func (cc *carbonCollector) serve(l net.Listener) {
	for {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		go func() {
			defer func() { recover() }()
			defer conn.Close()
			r := bufio.NewReader(io.LimitReader(conn, 1<<20))
			for {
				line, err := r.ReadString('\n')
				if line != "" {
					cc.mu.Lock()
					cc.lines = append(cc.lines, strings.TrimSuffix(line, "\n"))
					cc.mu.Unlock()
				}
				if err != nil {
					return
				}
			}
		}()
	}
}

func (cc *carbonCollector) snapshot() []string {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	return append([]string(nil), cc.lines...)
}

func TestCarbonSinkFlush(t *testing.T) {
	netw := transport.NewInMemNetwork()
	l, err := netw.Listen("carbon:2003")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	cc := &carbonCollector{}
	go cc.serve(l)

	sink := NewCarbonSink(netw, "carbon:2003", "ganglia", time.Second)
	defer sink.Close()
	when := time.Unix(1_057_000_000, 0)
	batch := []Sample{
		{Cluster: "meteor", Host: "n0", Metric: "load_one", Value: 0.25, When: when},
		{Grid: "SDSC", Cluster: "meteor", Host: "n1", Metric: "req.count", Value: 42, When: when},
	}
	if err := sink.Flush(batch); err != nil {
		t.Fatalf("Flush: %v", err)
	}

	want := []string{
		"ganglia.meteor.n0.load_one 0.25 1057000000",
		"ganglia.SDSC.meteor.n1.req.count 42 1057000000",
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		got := cc.snapshot()
		if len(got) >= len(want) {
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("line %d = %q, want %q", i, got[i], want[i])
				}
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("collector got %q, want %q", got, want)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestCarbonSinkDialFailure(t *testing.T) {
	netw := transport.NewInMemNetwork()
	sink := NewCarbonSink(netw, "nowhere:2003", "", time.Second)
	defer sink.Close()
	err := sink.Flush([]Sample{{Cluster: "c", Host: "h", Metric: "m", Value: 1}})
	if err == nil {
		t.Fatal("Flush to an unlistened address: want error")
	}
}

func TestCarbonSinkClosedFails(t *testing.T) {
	netw := transport.NewInMemNetwork()
	sink := NewCarbonSink(netw, "carbon:2003", "", time.Second)
	sink.Close()
	if err := sink.Flush([]Sample{{Cluster: "c", Host: "h", Metric: "m"}}); err == nil {
		t.Fatal("Flush after Close: want error")
	}
}
