package fabric

import (
	"sync"
	"time"

	"ganglia/internal/clock"
)

// Sample is one flattened numeric observation on its way out of the
// monitoring tree: the path coordinates a foreign time-series consumer
// addresses, plus the value and the (injected-clock) observation time.
type Sample struct {
	Grid    string
	Cluster string
	Host    string
	Metric  string
	Value   float64
	When    time.Time
}

// Sink delivers batches of samples to one foreign consumer. Flush is
// called from the sink's own flusher goroutine, one batch at a time; a
// returned error drops the batch (counted, never silent). Flush must
// bound its own I/O with deadlines — a hung consumer is its problem to
// detect, the manager's only to survive.
type Sink interface {
	Name() string
	Flush(batch []Sample) error
}

// DefaultQueueCap bounds each sink's queue; DefaultBatchSize caps one
// Flush call.
const (
	DefaultQueueCap  = 4096
	DefaultBatchSize = 512
)

// SinkConfig configures a SinkManager.
type SinkConfig struct {
	// QueueCap bounds each sink's pending-sample queue. When an Offer
	// would exceed it, the oldest samples are dropped first (and
	// counted): fresh data is worth more than a backlog to a monitor.
	// Defaults to DefaultQueueCap.
	QueueCap int
	// BatchSize caps how many samples one Flush call carries.
	// Defaults to DefaultBatchSize.
	BatchSize int
}

// sinkState is one sink's bounded queue and flusher bookkeeping.
type sinkState struct {
	sink Sink
	mu   sync.Mutex
	// queue is the pending window, oldest first; never longer than
	// QueueCap outside Offer's own critical section.
	queue []Sample
	wake  chan struct{} // 1-buffered flusher doorbell
	done  chan struct{}
}

// SinkManager fans samples out to a set of sinks, each with its own
// bounded queue, drop-oldest backpressure and panic-isolated flusher
// goroutine. Offer never blocks and never performs I/O: the poll path
// that feeds the manager stays on its own time scale no matter how the
// consumers behave.
type SinkManager struct {
	cfg  SinkConfig
	acct Accounting

	mu      sync.Mutex
	sinks   []*sinkState
	stopped bool
	wg      sync.WaitGroup
}

// NewSinkManager returns an empty manager; Add attaches sinks.
func NewSinkManager(cfg SinkConfig) *SinkManager {
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = DefaultQueueCap
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = DefaultBatchSize
	}
	return &SinkManager{cfg: cfg}
}

// Accounting returns the live egress counters.
func (m *SinkManager) Accounting() *Accounting { return &m.acct }

// Add attaches a sink and starts its flusher goroutine. Adding to a
// stopped manager is a no-op.
func (m *SinkManager) Add(s Sink) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.stopped {
		return
	}
	st := &sinkState{
		sink: s,
		wake: make(chan struct{}, 1),
		done: make(chan struct{}),
	}
	m.sinks = append(m.sinks, st)
	m.wg.Add(1)
	go m.flusher(st)
}

// Offer enqueues a batch for every sink, dropping each queue's oldest
// samples when the cap would be exceeded. It never blocks.
func (m *SinkManager) Offer(batch []Sample) {
	if len(batch) == 0 {
		return
	}
	m.acct.offered.Add(int64(len(batch)))
	m.mu.Lock()
	stopped := m.stopped
	sinks := m.sinks
	m.mu.Unlock()
	if stopped || len(sinks) == 0 {
		return
	}
	for _, st := range sinks {
		st.mu.Lock()
		st.queue = append(st.queue, batch...)
		if over := len(st.queue) - m.cfg.QueueCap; over > 0 {
			m.acct.sinkDrops.Add(int64(over))
			st.queue = append(st.queue[:0], st.queue[over:]...)
		}
		m.acct.raiseHighWater(int64(len(st.queue)))
		st.mu.Unlock()
		select {
		case st.wake <- struct{}{}:
		default: // doorbell already rung
		}
	}
}

// recoverSinkPanic isolates one flusher goroutine: a panicking sink
// implementation costs its own flusher, never the daemon.
func (m *SinkManager) recoverSinkPanic() {
	if r := recover(); r != nil {
		m.acct.sinkPanics.Add(1)
	}
}

// flusher drains one sink's queue in batches whenever the doorbell
// rings, and attempts a final drain on shutdown.
func (m *SinkManager) flusher(st *sinkState) {
	defer m.wg.Done()
	defer m.recoverSinkPanic()
	for {
		select {
		case <-st.done:
			m.drainQueue(st)
			return
		case <-st.wake:
		}
		m.drainQueue(st)
	}
}

// drainQueue flushes st's queue in BatchSize batches. The sink's I/O
// always runs off the queue lock, so producers keep enqueueing (and
// drop-aging) while a flush is in flight.
func (m *SinkManager) drainQueue(st *sinkState) {
	for {
		st.mu.Lock()
		n := len(st.queue)
		if n == 0 {
			st.mu.Unlock()
			return
		}
		if n > m.cfg.BatchSize {
			n = m.cfg.BatchSize
		}
		batch := make([]Sample, n)
		copy(batch, st.queue[:n])
		st.queue = append(st.queue[:0], st.queue[n:]...)
		st.mu.Unlock()

		if err := st.sink.Flush(batch); err != nil {
			m.acct.sinkFlushFails.Add(1)
			m.acct.sinkDrops.Add(int64(len(batch)))
		} else {
			m.acct.sinkFlushes.Add(1)
		}
	}
}

// stop closes every flusher's done channel once.
func (m *SinkManager) stop() {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.stopped {
		return
	}
	m.stopped = true
	for _, st := range m.sinks {
		close(st.done)
	}
}

// Drain stops the manager and waits up to timeout (wall clock) for
// every flusher to finish its final drain. It reports whether they all
// exited; either way no further samples are accepted.
func (m *SinkManager) Drain(timeout time.Duration) bool {
	m.stop()
	finished := make(chan struct{})
	go func() {
		defer m.recoverSinkPanic()
		m.wg.Wait()
		close(finished)
	}()
	select {
	case <-finished:
		return true
	case <-clock.After(timeout):
		return false
	}
}

// Close stops the manager and waits for every flusher to exit.
func (m *SinkManager) Close() {
	m.stop()
	m.wg.Wait()
}
