package fabric

import (
	"fmt"
	"io"
	"net"
	"sort"
	"sync"
	"time"

	"ganglia/internal/clock"
	"ganglia/internal/gmond"
	"ganglia/internal/metric"
	"ganglia/internal/transport"
)

// statsdSource and pushSource label the SOURCE attribute of metrics
// admitted through each receiver.
const (
	statsdSource = "statsd"
	pushSource   = "push"
)

// DefaultFlushEvery is the hub's aggregation window: how often Run
// folds pending statsd/push state into announcements.
const DefaultFlushEvery = 10 * time.Second

// DefaultMetricTMAX matches gmond.SetMetric's gmetric default: a
// fabric metric silent for 60 s starts reading as stale.
const DefaultMetricTMAX = 60

// maxDatagram bounds one received statsd packet, mirroring the UDP bus.
const maxDatagram = 64 * 1024

// Config configures a Hub.
type Config struct {
	// Cluster names the synthetic cluster the hub's metrics form;
	// Owner and URL annotate its CLUSTER tag.
	Cluster string
	Owner   string
	URL     string

	// Host and IP identify the default node metrics are attributed to:
	// statsd lines carry no host, so they land here, as do push
	// metrics that omit one.
	Host string
	IP   string

	// Clock supplies time; defaults to the system clock.
	Clock clock.Clock

	// HeartbeatEvery is the synthetic heartbeat interval in seconds
	// for hosts the hub speaks for; defaults to
	// gmond.DefaultHeartbeatEvery.
	HeartbeatEvery uint32

	// FlushEvery is Run's aggregation cadence; defaults to
	// DefaultFlushEvery. Tests drive Flush directly instead.
	FlushEvery time.Duration

	// MetricTMAX and MetricDMAX are the soft-state lifetimes stamped
	// on admitted metrics. TMAX defaults to DefaultMetricTMAX; DMAX
	// defaults to zero (keep until overwritten).
	MetricTMAX uint32
	MetricDMAX uint32
}

// hubHost is one node the hub speaks for.
type hubHost struct {
	ip     string
	lastHB time.Time
	hasHB  bool
}

// aggKey addresses one aggregate: one bucket on one host.
type aggKey struct {
	host   string
	bucket string
}

// agg is the between-flushes state of one metric.
type agg struct {
	kind StatKind

	total float64 // counter: running total, persists across flushes
	level float64 // gauge: current level

	timerSum   float64 // timer: window sum
	timerCount int64   // timer: window observations

	units  string // "" for counters/gauges, "ms" for timers, push-supplied otherwise
	source string // SOURCE attribute: "statsd" or "push"
	dirty  bool   // received data since the last flush
}

// Hub is the receiver half of the fabric: a statsd/push ingest front
// that maintains a real gmond cluster pool behind it. Every admitted
// metric becomes an ordinary XDR announcement delivered through an
// in-process bus into a mute gmond agent, so the hub serves the exact
// gmond TCP contract — same soft state, same sorted, deterministic XML
// — and any gmetad can poll it as a SourceGmond data source.
type Hub struct {
	cfg   Config
	acct  Accounting
	start time.Time

	bus  *transport.InMemBus
	pool *gmond.Gmond

	mu    sync.Mutex
	hosts map[string]*hubHost
	aggs  map[aggKey]*agg

	lifeMu    sync.Mutex
	closed    bool
	packetCon []net.PacketConn
	listeners []net.Listener
	done      chan struct{}
	wg        sync.WaitGroup
}

// NewHub creates a hub. It performs no I/O until ListenStatsd,
// ServePush, Serve or Run is invoked.
func NewHub(cfg Config) (*Hub, error) {
	if cfg.Cluster == "" {
		return nil, fmt.Errorf("fabric: empty cluster name")
	}
	if cfg.Host == "" {
		return nil, fmt.Errorf("fabric: empty host name")
	}
	if cfg.Clock == nil {
		cfg.Clock = clock.Real{}
	}
	if cfg.HeartbeatEvery == 0 {
		cfg.HeartbeatEvery = gmond.DefaultHeartbeatEvery
	}
	if cfg.FlushEvery <= 0 {
		cfg.FlushEvery = DefaultFlushEvery
	}
	if cfg.MetricTMAX == 0 {
		cfg.MetricTMAX = DefaultMetricTMAX
	}
	bus := transport.NewInMemBus()
	pool, err := gmond.New(gmond.Config{
		Cluster:        cfg.Cluster,
		Owner:          cfg.Owner,
		URL:            cfg.URL,
		Host:           cfg.Host,
		IP:             cfg.IP,
		Bus:            bus,
		Clock:          cfg.Clock,
		HeartbeatEvery: cfg.HeartbeatEvery,
		// Mute: the pool only listens; the hub speaks for its hosts by
		// sending announcements on the internal bus.
		Mute: true,
	})
	if err != nil {
		return nil, fmt.Errorf("fabric: pool: %w", err)
	}
	return &Hub{
		cfg:   cfg,
		start: cfg.Clock.Now(),
		bus:   bus,
		pool:  pool,
		hosts: make(map[string]*hubHost),
		aggs:  make(map[aggKey]*agg),
		done:  make(chan struct{}),
	}, nil
}

// Cluster returns the hub's cluster name.
func (h *Hub) Cluster() string { return h.cfg.Cluster }

// Accounting returns the live ingest counters.
func (h *Hub) Accounting() *Accounting { return &h.acct }

// IngestStatsd ingests one statsd packet (one or more newline-separated
// lines). Parse failures are counted per line and never abort the rest
// of the packet: one garbled line must not cost its neighbors.
func (h *Hub) IngestStatsd(pkt []byte) {
	h.acct.statsdPackets.Add(1)
	h.mu.Lock()
	defer h.mu.Unlock()
	splitLines(pkt, func(line []byte) {
		s, err := ParseStatsd(line)
		if err != nil {
			h.acct.parseErrors.Add(1)
			return
		}
		h.acct.receivedLines.Add(1)
		h.applyStat(h.cfg.Host, h.cfg.IP, s)
	})
}

// applyStat folds one parsed stat into the pending aggregate. Caller
// holds mu.
func (h *Hub) applyStat(host, ip string, s Stat) {
	h.touchHost(host, ip)
	key := aggKey{host: host, bucket: s.Bucket}
	a := h.aggs[key]
	if a == nil || a.kind != s.Kind {
		// First sight, or the bucket changed type: a type change resets
		// the aggregate rather than mixing incompatible state.
		a = &agg{kind: s.Kind}
		h.aggs[key] = a
	}
	a.source = statsdSource
	switch s.Kind {
	case KindCounter:
		a.total += s.Value / s.SampleRate
	case KindGauge:
		if s.GaugeDelta {
			a.level += s.Value
		} else {
			a.level = s.Value
		}
	case KindTimer:
		a.timerSum += s.Value
		a.timerCount++
		a.units = "ms"
	}
	a.dirty = true
}

// touchHost registers a node the hub speaks for. Caller holds mu.
func (h *Hub) touchHost(host, ip string) *hubHost {
	hh := h.hosts[host]
	if hh == nil {
		hh = &hubHost{}
		h.hosts[host] = hh
	}
	if ip != "" {
		hh.ip = ip
	}
	return hh
}

// Flush folds every pending aggregate into announcements and delivers
// them to the pool, as of now: due heartbeats first (liveness must not
// wait behind metric work, like gmond.Step), then each host's dirty
// metrics in sorted order, so a flush is deterministic for a given
// ingest history.
func (h *Hub) Flush(now time.Time) {
	var out []metric.Announcement

	h.mu.Lock()
	h.acct.flushes.Add(1)
	hostNames := make([]string, 0, len(h.hosts))
	for name := range h.hosts {
		hostNames = append(hostNames, name)
	}
	sort.Strings(hostNames)
	hbEvery := time.Duration(h.cfg.HeartbeatEvery) * time.Second
	for _, name := range hostNames {
		hh := h.hosts[name]
		if !hh.hasHB || now.Sub(hh.lastHB) >= hbEvery {
			hh.hasHB = true
			hh.lastHB = now
			hb := metric.Heartbeat(h.start.Unix(), h.cfg.HeartbeatEvery)
			out = append(out, metric.Announcement{Host: name, IP: hh.ip, Metric: hb})
		}
		var buckets []string
		for key, a := range h.aggs {
			if key.host == name && a.dirty {
				buckets = append(buckets, key.bucket)
			}
		}
		sort.Strings(buckets)
		for _, bucket := range buckets {
			a := h.aggs[aggKey{host: name, bucket: bucket}]
			m, ok := h.metricOf(bucket, a)
			if !ok {
				continue
			}
			out = append(out, metric.Announcement{Host: name, IP: hh.ip, Metric: m})
			a.dirty = false
			a.timerSum, a.timerCount = 0, 0
		}
	}
	h.mu.Unlock()

	// Encode and send outside the lock: InMemBus delivery is synchronous
	// into the pool's own lock, and I/O never runs under ours.
	for _, ann := range out {
		_ = h.bus.Send(ann.Encode())
	}
	h.acct.announcements.Add(int64(len(out)))
}

// metricOf shapes one aggregate into the metric it announces. Caller
// holds mu.
func (h *Hub) metricOf(bucket string, a *agg) (metric.Metric, bool) {
	m := metric.Metric{
		Name:   bucket,
		Units:  a.units,
		TMAX:   h.cfg.MetricTMAX,
		DMAX:   h.cfg.MetricDMAX,
		Source: a.source,
	}
	switch a.kind {
	case KindCounter:
		m.Val = metric.NewDouble(a.total)
		m.Slope = metric.SlopePositive
	case KindGauge:
		m.Val = metric.NewDouble(a.level)
		m.Slope = metric.SlopeBoth
	case KindTimer:
		if a.timerCount == 0 {
			return m, false
		}
		m.Val = metric.NewDouble(a.timerSum / float64(a.timerCount))
		m.Slope = metric.SlopeBoth
	default:
		return m, false
	}
	return m, true
}

// WriteXML serializes the hub's current cluster report to w — the same
// bytes a poll of the hub would download.
func (h *Hub) WriteXML(w io.Writer) error { return h.pool.WriteXML(w) }

// Serve accepts connections on l and writes one full cluster report
// per connection — the gmond TCP contract, so a gmetad lists the hub
// as an ordinary SourceGmond data source. Serve returns when the
// listener is closed.
func (h *Hub) Serve(l net.Listener) { h.pool.Serve(l) }

// ListenStatsd consumes statsd datagrams from pc until it is closed
// (Close closes it). The read loop runs on its own panic-isolated
// goroutine.
func (h *Hub) ListenStatsd(pc net.PacketConn) {
	h.lifeMu.Lock()
	if h.closed {
		h.lifeMu.Unlock()
		_ = pc.Close()
		return
	}
	h.packetCon = append(h.packetCon, pc)
	h.wg.Add(1)
	h.lifeMu.Unlock()
	go h.statsdLoop(pc)
}

// recoverReceiverPanic isolates one receiver goroutine: a panic while
// ingesting hostile bytes must cost that receiver, not the daemon.
func (h *Hub) recoverReceiverPanic() {
	if r := recover(); r != nil {
		h.acct.receiverPanics.Add(1)
	}
}

// statsdLoop reads datagrams into a fixed buffer; each packet is
// copied out by the parser before the buffer is reused.
func (h *Hub) statsdLoop(pc net.PacketConn) {
	defer h.wg.Done()
	defer h.recoverReceiverPanic()
	buf := make([]byte, maxDatagram)
	for {
		n, _, err := pc.ReadFrom(buf)
		if err != nil {
			return // closed
		}
		h.IngestStatsd(buf[:n])
	}
}

// Run drives the hub against its clock until done is closed: pending
// aggregates are flushed into the pool every FlushEvery. Production
// binaries use Run; tests call Flush with a virtual clock.
func (h *Hub) Run(done <-chan struct{}) {
	t := clock.NewTicker(h.cfg.FlushEvery)
	defer t.Stop()
	for {
		select {
		case <-done:
			return
		case <-h.done:
			return
		case <-t.C:
			h.Flush(h.cfg.Clock.Now())
		}
	}
}

// Close stops every receiver and serve loop and waits for their
// goroutines to exit.
func (h *Hub) Close() {
	h.lifeMu.Lock()
	if h.closed {
		h.lifeMu.Unlock()
		return
	}
	h.closed = true
	close(h.done)
	pcs := h.packetCon
	h.packetCon = nil
	ls := h.listeners
	h.listeners = nil
	h.lifeMu.Unlock()
	for _, pc := range pcs {
		_ = pc.Close()
	}
	for _, l := range ls {
		_ = l.Close()
	}
	h.pool.Close()
	_ = h.bus.Close()
	h.wg.Wait()
}
