package fabric

import (
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"

	"ganglia/internal/transport"
)

// The Graphite/Carbon plaintext protocol: one datapoint per line,
//
//	<dotted.path> <value> <unix-seconds>\n
//
// written over a long-lived TCP connection. Carbon never answers, so
// delivery is fire-and-forget; the sink's only feedback is the write
// succeeding or the connection dying.

// CarbonPoint is one plaintext-protocol datapoint. It is the unit the
// codec round-trips: ParseCarbon(AppendCarbon(nil, p)) == p for every
// valid point, which the fuzz battery holds it to.
type CarbonPoint struct {
	Path  string
	Value float64
	Unix  int64
}

// maxCarbonLine bounds one plaintext line, path included.
const maxCarbonLine = 1024

// ErrCarbon is the base error of every Carbon parse failure.
var ErrCarbon = fmt.Errorf("fabric: bad carbon line")

// AppendCarbon appends p's plaintext line (with trailing newline) to
// dst and returns the extended slice.
func AppendCarbon(dst []byte, p CarbonPoint) []byte {
	dst = append(dst, p.Path...)
	dst = append(dst, ' ')
	dst = strconv.AppendFloat(dst, p.Value, 'g', -1, 64)
	dst = append(dst, ' ')
	dst = strconv.AppendInt(dst, p.Unix, 10)
	dst = append(dst, '\n')
	return dst
}

// carbonPathByteOK admits the bytes a sanitized Carbon path component
// may carry: the statsd bucket alphabet plus the '.' separator.
func carbonPathByteOK(b byte) bool {
	return bucketByteOK(b) || b == '.'
}

// ParseCarbon parses one plaintext line (trailing newline optional).
// The parser is strict — a point it accepts re-encodes to an equivalent
// point — and never panics on arbitrary input.
func ParseCarbon(line []byte) (CarbonPoint, error) {
	var p CarbonPoint
	if n := len(line); n > 0 && line[n-1] == '\n' {
		line = line[:n-1]
		if n := len(line); n > 0 && line[n-1] == '\r' {
			line = line[:n-1]
		}
	}
	if len(line) == 0 {
		return p, fmt.Errorf("%w: empty line", ErrCarbon)
	}
	if len(line) > maxCarbonLine {
		return p, fmt.Errorf("%w: line exceeds %d bytes", ErrCarbon, maxCarbonLine)
	}
	fields := strings.Fields(string(line))
	if len(fields) != 3 {
		return p, fmt.Errorf("%w: %d fields, want 3", ErrCarbon, len(fields))
	}
	path := fields[0]
	for i := 0; i < len(path); i++ {
		if !carbonPathByteOK(path[i]) {
			return p, fmt.Errorf("%w: path byte %q", ErrCarbon, path[i])
		}
	}
	if path[0] == '.' || path[len(path)-1] == '.' || strings.Contains(path, "..") {
		return p, fmt.Errorf("%w: empty path component in %q", ErrCarbon, path)
	}
	v, err := strconv.ParseFloat(fields[1], 64)
	if err != nil {
		return p, fmt.Errorf("%w: value %q", ErrCarbon, fields[1])
	}
	if v != v || v > 1e308 || v < -1e308 {
		return p, fmt.Errorf("%w: non-finite value %q", ErrCarbon, fields[1])
	}
	ts, err := strconv.ParseInt(fields[2], 10, 64)
	if err != nil || ts < 0 {
		return p, fmt.Errorf("%w: timestamp %q", ErrCarbon, fields[2])
	}
	p.Path = path
	p.Value = v
	p.Unix = ts
	return p, nil
}

// carbonComponent sanitizes one path component: disallowed bytes
// (separators included — a '.' inside a host name must not split the
// path) become '_', and an empty component becomes "_".
func carbonComponent(s string) string {
	if s == "" {
		return "_"
	}
	var b []byte
	for i := 0; i < len(s); i++ {
		// '.' is the path separator: one inside a component must not
		// mint extra components, so it is replaced like any other
		// disallowed byte.
		if bucketByteOK(s[i]) && s[i] != '.' {
			continue
		}
		if b == nil {
			b = []byte(s)
		}
		b[i] = '_'
	}
	if b == nil {
		return s
	}
	return string(b)
}

// CarbonPath flattens a sample's tree coordinates into a dotted path:
// [prefix.][grid.]cluster.host.metric, each component sanitized. The
// metric name keeps its own dots (statsd buckets are already dotted
// paths).
func CarbonPath(prefix string, s Sample) string {
	parts := make([]string, 0, 5)
	if prefix != "" {
		parts = append(parts, carbonComponent(prefix))
	}
	if s.Grid != "" {
		parts = append(parts, carbonComponent(s.Grid))
	}
	parts = append(parts, carbonComponent(s.Cluster), carbonComponent(s.Host))
	metric := s.Metric
	if metric == "" {
		metric = "_"
	}
	mparts := strings.Split(metric, ".")
	for _, mp := range mparts {
		parts = append(parts, carbonComponent(mp))
	}
	return strings.Join(parts, ".")
}

// DefaultCarbonWriteTimeout bounds one batch write to Carbon.
const DefaultCarbonWriteTimeout = 5 * time.Second

// CarbonSink streams samples to a Graphite/Carbon relay as plaintext
// datapoints over a lazily-dialed, reused TCP connection. A failed dial
// or write fails the Flush (the manager counts the batch as dropped)
// and discards the connection so the next flush re-dials.
type CarbonSink struct {
	network transport.Network
	addr    string
	// Prefix, when non-empty, roots every path ("<prefix>.<grid>...").
	prefix string
	// writeTimeout bounds one batch write; the deadline is what turns a
	// hung relay into a counted drop instead of a stuck flusher.
	writeTimeout time.Duration

	mu     sync.Mutex
	conn   net.Conn
	closed bool
}

// NewCarbonSink returns a sink that writes to addr over network.
// prefix optionally roots every emitted path; writeTimeout <= 0 means
// DefaultCarbonWriteTimeout.
func NewCarbonSink(network transport.Network, addr, prefix string, writeTimeout time.Duration) *CarbonSink {
	if writeTimeout <= 0 {
		writeTimeout = DefaultCarbonWriteTimeout
	}
	return &CarbonSink{network: network, addr: addr, prefix: prefix, writeTimeout: writeTimeout}
}

// Name implements Sink.
func (c *CarbonSink) Name() string { return "carbon(" + c.addr + ")" }

// Flush implements Sink: encode the batch and write it in one call.
// The cached connection is taken out of the sink for the duration of
// the write — the lock only guards the handoff, never the I/O.
func (c *CarbonSink) Flush(batch []Sample) error {
	buf := make([]byte, 0, 64*len(batch))
	for _, s := range batch {
		buf = AppendCarbon(buf, CarbonPoint{
			Path:  CarbonPath(c.prefix, s),
			Value: s.Value,
			Unix:  s.When.Unix(),
		})
	}
	c.mu.Lock()
	conn, closed := c.conn, c.closed
	c.conn = nil
	c.mu.Unlock()
	if closed {
		if conn != nil {
			_ = conn.Close()
		}
		return fmt.Errorf("fabric: carbon sink %s closed", c.addr)
	}
	if conn == nil {
		var err error
		conn, err = c.network.Dial(c.addr)
		if err != nil {
			return fmt.Errorf("fabric: carbon dial %s: %w", c.addr, err)
		}
	}
	if err := conn.SetWriteDeadline(time.Now().Add(c.writeTimeout)); err != nil {
		_ = conn.Close()
		return fmt.Errorf("fabric: carbon deadline %s: %w", c.addr, err)
	}
	if _, err := conn.Write(buf); err != nil {
		_ = conn.Close()
		return fmt.Errorf("fabric: carbon write %s: %w", c.addr, err)
	}
	c.mu.Lock()
	if c.closed || c.conn != nil {
		c.mu.Unlock()
		_ = conn.Close()
		return nil
	}
	c.conn = conn
	c.mu.Unlock()
	return nil
}

// Close drops the current connection, if any, and fails future flushes.
func (c *CarbonSink) Close() {
	c.mu.Lock()
	conn := c.conn
	c.conn = nil
	c.closed = true
	c.mu.Unlock()
	if conn != nil {
		_ = conn.Close()
	}
}
