package fabric

import (
	"errors"
	"strings"
	"testing"
)

func TestParseStatsdValid(t *testing.T) {
	cases := []struct {
		line string
		want Stat
	}{
		{"req.count:1|c", Stat{Bucket: "req.count", Value: 1, Kind: KindCounter, SampleRate: 1}},
		{"req.count:7|c|@0.1", Stat{Bucket: "req.count", Value: 7, Kind: KindCounter, SampleRate: 0.1}},
		{"mem_free:1024|g", Stat{Bucket: "mem_free", Value: 1024, Kind: KindGauge, SampleRate: 1}},
		{"mem_free:+5|g", Stat{Bucket: "mem_free", Value: 5, Kind: KindGauge, SampleRate: 1, GaugeDelta: true}},
		{"mem_free:-3.5|g", Stat{Bucket: "mem_free", Value: -3.5, Kind: KindGauge, SampleRate: 1, GaugeDelta: true}},
		{"rpc.latency:12.75|ms", Stat{Bucket: "rpc.latency", Value: 12.75, Kind: KindTimer, SampleRate: 1}},
		{"a-b_c.d:0|c", Stat{Bucket: "a-b_c.d", Value: 0, Kind: KindCounter, SampleRate: 1}},
	}
	for _, c := range cases {
		got, err := ParseStatsd([]byte(c.line))
		if err != nil {
			t.Errorf("ParseStatsd(%q): %v", c.line, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseStatsd(%q) = %+v, want %+v", c.line, got, c.want)
		}
	}
}

func TestParseStatsdInvalid(t *testing.T) {
	cases := []string{
		"",                                 // empty
		":1|c",                             // empty bucket
		"foo",                              // no colon
		"foo:1",                            // no type
		"foo:1|x",                          // unknown type
		"foo:|c",                           // empty value
		"foo:abc|c",                        // non-numeric value
		"foo:NaN|g",                        // NaN poisons aggregates
		"foo:Inf|g",                        // so does infinity
		"foo:1e400|g",                      // overflows to +Inf
		"foo:-5|ms",                        // negative timer
		"foo:1|g|@0.5",                     // rate on a gauge
		"foo:1|ms|@0.5",                    // rate on a timer
		"foo:1|c|@0",                       // rate out of (0,1]
		"foo:1|c|@1.5",                     // rate out of (0,1]
		"foo:1|c|@",                        // empty rate
		"foo:1|c|junk",                     // trailing field is not @rate
		"foo bar:1|c",                      // space in bucket
		"foo:1|c\x00",                      // control byte in spec
		"b\x7fd:1|c",                       // control byte in bucket
		"<x>:1|c",                          // XML metacharacters refused
		strings.Repeat("a", 1030) + ":1|c", // over maxStatsdLine
	}
	for _, line := range cases {
		if _, err := ParseStatsd([]byte(line)); err == nil {
			t.Errorf("ParseStatsd(%q): want error", line)
		} else if !errors.Is(err, ErrStatsd) {
			t.Errorf("ParseStatsd(%q): error %v does not wrap ErrStatsd", line, err)
		}
	}
}

func TestSplitLines(t *testing.T) {
	var got []string
	splitLines([]byte("a:1|c\nb:2|g\r\n\n\nc:3|ms\n"), func(line []byte) {
		got = append(got, string(line))
	})
	want := []string{"a:1|c", "b:2|g", "c:3|ms"}
	if len(got) != len(want) {
		t.Fatalf("lines = %q, want %q", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("line %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestSplitLinesNoTrailingNewline(t *testing.T) {
	var got []string
	splitLines([]byte("a:1|c"), func(line []byte) { got = append(got, string(line)) })
	if len(got) != 1 || got[0] != "a:1|c" {
		t.Fatalf("lines = %q", got)
	}
}
