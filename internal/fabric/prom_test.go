package fabric

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestPromSinkExposition(t *testing.T) {
	p := &PromSink{}
	when := time.Unix(1_057_000_000, 0)
	err := p.Flush([]Sample{
		{Grid: "SDSC", Cluster: "meteor", Host: "n1", Metric: "load_one", Value: 0.5, When: when},
		{Cluster: "meteor", Host: "n0", Metric: "load_one", Value: 0.25, When: when},
		{Cluster: "meteor", Host: "n0", Metric: "disk.free", Value: 512, When: when},
	})
	if err != nil {
		t.Fatalf("Flush: %v", err)
	}
	// A later flush overwrites a series in place.
	if err := p.Flush([]Sample{
		{Cluster: "meteor", Host: "n0", Metric: "load_one", Value: 0.75, When: when.Add(time.Second)},
	}); err != nil {
		t.Fatalf("Flush: %v", err)
	}

	req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	rec := httptest.NewRecorder()
	p.ServeHTTP(rec, req)
	want := `# HELP ganglia_disk_free Ganglia metric disk.free
# TYPE ganglia_disk_free untyped
ganglia_disk_free{cluster="meteor",host="n0"} 512 1057000000000
# HELP ganglia_load_one Ganglia metric load_one
# TYPE ganglia_load_one untyped
ganglia_load_one{cluster="meteor",host="n0"} 0.75 1057000001000
ganglia_load_one{grid="SDSC",cluster="meteor",host="n1"} 0.5 1057000000000
`
	if got := rec.Body.String(); got != want {
		t.Errorf("exposition:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q", ct)
	}

	// Two scrapes of the same state are byte-identical.
	rec2 := httptest.NewRecorder()
	p.ServeHTTP(rec2, req)
	if rec2.Body.String() != want {
		t.Error("second scrape differs from the first")
	}
}

func TestPromSinkLabelEscaping(t *testing.T) {
	p := &PromSink{}
	if err := p.Flush([]Sample{
		{Cluster: `lab "west"` + "\n", Host: `a\b`, Metric: "m", Value: 1},
	}); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	rec := httptest.NewRecorder()
	p.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	body := rec.Body.String()
	if !strings.Contains(body, `cluster="lab \"west\"\n"`) || !strings.Contains(body, `host="a\\b"`) {
		t.Errorf("labels not escaped:\n%s", body)
	}
}

func TestPromSinkSeriesCap(t *testing.T) {
	p := &PromSink{MaxSeries: 2}
	if err := p.Flush([]Sample{
		{Cluster: "c", Host: "h1", Metric: "m"},
		{Cluster: "c", Host: "h2", Metric: "m"},
	}); err != nil {
		t.Fatalf("Flush under cap: %v", err)
	}
	// A new series past the cap fails the flush (the manager counts the
	// batch as dropped); existing series still update.
	err := p.Flush([]Sample{
		{Cluster: "c", Host: "h1", Metric: "m", Value: 9},
		{Cluster: "c", Host: "h3", Metric: "m"},
	})
	if err == nil {
		t.Fatal("Flush past series cap: want error")
	}
	rec := httptest.NewRecorder()
	p.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	body := rec.Body.String()
	if strings.Contains(body, `host="h3"`) {
		t.Errorf("capped series leaked in:\n%s", body)
	}
	if !strings.Contains(body, `host="h1"} 9 `) {
		t.Errorf("existing series not updated:\n%s", body)
	}
}
