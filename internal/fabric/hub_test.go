package fabric

import (
	"bytes"
	"io"
	"net"
	"strings"
	"testing"
	"time"

	"ganglia/internal/clock"
	"ganglia/internal/transport"
)

var t0 = time.Unix(1_057_000_000, 0)

func newTestHub(t *testing.T) (*Hub, *clock.Virtual) {
	t.Helper()
	clk := clock.NewVirtual(t0)
	h, err := NewHub(Config{
		Cluster: "meteor",
		Owner:   "SDSC",
		Host:    "hub-0",
		IP:      "10.9.0.1",
		Clock:   clk,
	})
	if err != nil {
		t.Fatalf("NewHub: %v", err)
	}
	t.Cleanup(h.Close)
	return h, clk
}

func hubXML(t *testing.T, h *Hub) string {
	t.Helper()
	var buf bytes.Buffer
	if err := h.WriteXML(&buf); err != nil {
		t.Fatalf("WriteXML: %v", err)
	}
	return buf.String()
}

func TestHubConfigValidation(t *testing.T) {
	if _, err := NewHub(Config{Host: "h"}); err == nil {
		t.Error("NewHub without cluster: want error")
	}
	if _, err := NewHub(Config{Cluster: "c"}); err == nil {
		t.Error("NewHub without host: want error")
	}
}

func TestHubStatsdToXML(t *testing.T) {
	h, clk := newTestHub(t)
	h.IngestStatsd([]byte("req.count:40|c\nreq.count:2|c\nmem_free:1024|g\nrpc.latency:10|ms\nrpc.latency:20|ms\n"))
	h.Flush(clk.Now())

	xml := hubXML(t, h)
	for _, want := range []string{
		`<CLUSTER NAME="meteor" OWNER="SDSC"`,
		`<HOST NAME="hub-0" IP="10.9.0.1"`,
		`NAME="req.count" VAL="42.00" TYPE="double"`,
		`SLOPE="positive" SOURCE="statsd"`,
		`NAME="mem_free" VAL="1024.00"`,
		`NAME="rpc.latency" VAL="15.00" TYPE="double" UNITS="ms"`,
	} {
		if !strings.Contains(xml, want) {
			t.Errorf("report missing %q:\n%s", want, xml)
		}
	}
	s := h.Accounting().Snapshot()
	if s.ReceivedLines != 5 || s.ParseErrors != 0 || s.StatsdPackets != 1 {
		t.Errorf("accounting: %+v", s)
	}
}

func TestHubCounterAccumulatesAcrossFlushes(t *testing.T) {
	h, clk := newTestHub(t)
	h.IngestStatsd([]byte("hits:1|c|@0.1")) // sampled at 0.1: counts ten-fold
	h.Flush(clk.Now())
	h.IngestStatsd([]byte("hits:5|c"))
	h.Flush(clk.Advance(time.Second))
	if xml := hubXML(t, h); !strings.Contains(xml, `NAME="hits" VAL="15.00"`) {
		t.Errorf("counter total not cumulative:\n%s", xml)
	}
}

func TestHubGaugeDelta(t *testing.T) {
	h, clk := newTestHub(t)
	h.IngestStatsd([]byte("depth:10|g\ndepth:+5|g\ndepth:-3|g"))
	h.Flush(clk.Now())
	if xml := hubXML(t, h); !strings.Contains(xml, `NAME="depth" VAL="12.00"`) {
		t.Errorf("gauge deltas not applied:\n%s", xml)
	}
}

func TestHubTimerWindowResets(t *testing.T) {
	h, clk := newTestHub(t)
	h.IngestStatsd([]byte("lat:100|ms"))
	h.Flush(clk.Now())
	// A flush with no new observations must not re-announce a stale
	// mean of zero observations.
	h.IngestStatsd([]byte("lat:10|ms\nlat:30|ms"))
	h.Flush(clk.Advance(time.Second))
	if xml := hubXML(t, h); !strings.Contains(xml, `NAME="lat" VAL="20.00"`) {
		t.Errorf("timer window not reset:\n%s", xml)
	}
}

func TestHubGarbledLinesDoNotCostNeighbors(t *testing.T) {
	h, clk := newTestHub(t)
	h.IngestStatsd([]byte("good:1|c\n<garbage>\nalso.good:2|g\n"))
	h.Flush(clk.Now())
	xml := hubXML(t, h)
	if !strings.Contains(xml, `NAME="good"`) || !strings.Contains(xml, `NAME="also.good"`) {
		t.Errorf("valid lines lost to a garbled neighbor:\n%s", xml)
	}
	s := h.Accounting().Snapshot()
	if s.ReceivedLines != 2 || s.ParseErrors != 1 {
		t.Errorf("accounting: %+v", s)
	}
}

func TestHubHeartbeatCadence(t *testing.T) {
	h, clk := newTestHub(t)
	h.IngestStatsd([]byte("m:1|g"))
	h.Flush(clk.Now())
	base := h.Accounting().Snapshot()

	// Within the heartbeat interval a flush announces only dirty
	// metrics, no fresh heartbeat.
	h.IngestStatsd([]byte("m:2|g"))
	h.Flush(clk.Advance(time.Second))
	mid := h.Accounting().Snapshot().Sub(base)
	if mid.Announcements != 1 {
		t.Errorf("announcements within heartbeat interval = %d, want 1", mid.Announcements)
	}

	// Past the interval the heartbeat refreshes even with nothing dirty.
	clk.Advance(time.Duration(h.cfg.HeartbeatEvery) * time.Second)
	h.Flush(clk.Now())
	end := h.Accounting().Snapshot().Sub(base)
	if end.Announcements != 2 {
		t.Errorf("announcements after heartbeat interval = %d, want 2", end.Announcements)
	}
}

func TestHubServeMatchesWriteXML(t *testing.T) {
	h, clk := newTestHub(t)
	h.IngestStatsd([]byte("load_one:0.25|g"))
	h.Flush(clk.Now())

	netw := transport.NewInMemNetwork()
	l, err := netw.Listen("hub:8649")
	if err != nil {
		t.Fatal(err)
	}
	go h.Serve(l)
	defer l.Close()

	conn, err := netw.Dial("hub:8649")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	served, err := io.ReadAll(io.LimitReader(conn, 1<<20))
	if err != nil {
		t.Fatalf("read served report: %v", err)
	}
	if want := hubXML(t, h); string(served) != want {
		t.Errorf("served report differs from WriteXML:\n--- served ---\n%s\n--- local ---\n%s", served, want)
	}
}

func TestHubListenStatsdUDP(t *testing.T) {
	h, clk := newTestHub(t)
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("udp unavailable: %v", err)
	}
	h.ListenStatsd(pc)
	conn, err := net.Dial("udp", pc.LocalAddr().String())
	if err != nil {
		t.Fatalf("dial udp: %v", err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("udp.metric:7|g")); err != nil {
		t.Fatalf("write datagram: %v", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for h.Accounting().Snapshot().ReceivedLines == 0 {
		if time.Now().After(deadline) {
			t.Fatal("statsd datagram never ingested")
		}
		time.Sleep(time.Millisecond)
	}
	h.Flush(clk.Now())
	if xml := hubXML(t, h); !strings.Contains(xml, `NAME="udp.metric"`) {
		t.Errorf("udp metric missing:\n%s", xml)
	}
}
