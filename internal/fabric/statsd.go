package fabric

import (
	"errors"
	"fmt"
	"strconv"
)

// The statsd line protocol, as spoken by Etsy's statsd and its many
// clients:
//
//	<bucket>:<value>|<type>[|@<sample-rate>]
//
// where <type> is "c" (counter), "g" (gauge) or "ms" (timer). Gauges
// accept a signed value ("+5", "-3") as a delta against the previous
// gauge level. One UDP datagram may carry several lines separated by
// newlines.

// StatKind is the statsd metric type of one line.
type StatKind int

const (
	// KindCounter accumulates; the announced value is the running
	// total, scaled by the sample rate (a line sampled at @0.1 counts
	// ten-fold).
	KindCounter StatKind = iota
	// KindGauge is a level; the announced value is the last one set
	// (or the running level when deltas are used).
	KindGauge
	// KindTimer is an observation in milliseconds; the announced value
	// is the mean over one flush window.
	KindTimer
)

// String names the kind as the wire spells it.
func (k StatKind) String() string {
	switch k {
	case KindCounter:
		return "c"
	case KindGauge:
		return "g"
	case KindTimer:
		return "ms"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Stat is one parsed statsd line.
type Stat struct {
	// Bucket is the metric name.
	Bucket string
	// Value is the numeric payload.
	Value float64
	// Kind is the metric type.
	Kind StatKind
	// SampleRate is the client-side sampling probability in (0, 1];
	// 1 when the line carried no @rate.
	SampleRate float64
	// GaugeDelta marks a sign-prefixed gauge value, which adjusts the
	// previous level instead of replacing it.
	GaugeDelta bool
}

// ErrStatsd is the base error of every statsd parse failure.
var ErrStatsd = errors.New("fabric: bad statsd line")

// maxStatsdLine bounds one line; anything longer is hostile or
// corrupt, not a metric.
const maxStatsdLine = 1024

// ParseStatsd parses one statsd line (no trailing newline). The parser
// is strict: it either returns a fully-specified Stat or an error, and
// never panics on arbitrary input — the fuzz battery holds it to that.
func ParseStatsd(line []byte) (Stat, error) {
	var s Stat
	if len(line) == 0 {
		return s, fmt.Errorf("%w: empty line", ErrStatsd)
	}
	if len(line) > maxStatsdLine {
		return s, fmt.Errorf("%w: line exceeds %d bytes", ErrStatsd, maxStatsdLine)
	}
	colon := -1
	for i := 0; i < len(line); i++ {
		if line[i] == ':' {
			colon = i
			break
		}
	}
	if colon <= 0 {
		return s, fmt.Errorf("%w: missing bucket or ':'", ErrStatsd)
	}
	bucket := line[:colon]
	for _, b := range bucket {
		if !bucketByteOK(b) {
			return s, fmt.Errorf("%w: bucket byte %q", ErrStatsd, b)
		}
	}
	rest := line[colon+1:]

	pipe := -1
	for i := 0; i < len(rest); i++ {
		if rest[i] == '|' {
			pipe = i
			break
		}
	}
	if pipe < 0 {
		return s, fmt.Errorf("%w: missing '|type'", ErrStatsd)
	}
	valText := rest[:pipe]
	spec := rest[pipe+1:]

	// An optional "|@rate" suffix follows the type.
	rate := 1.0
	for i := 0; i < len(spec); i++ {
		if spec[i] != '|' {
			continue
		}
		if i+1 >= len(spec) || spec[i+1] != '@' {
			return s, fmt.Errorf("%w: trailing field is not '|@rate'", ErrStatsd)
		}
		r, err := strconv.ParseFloat(string(spec[i+2:]), 64)
		if err != nil || r <= 0 || r > 1 {
			return s, fmt.Errorf("%w: sample rate %q", ErrStatsd, spec[i+2:])
		}
		rate = r
		spec = spec[:i]
		break
	}

	switch string(spec) {
	case "c":
		s.Kind = KindCounter
	case "g":
		s.Kind = KindGauge
	case "ms":
		s.Kind = KindTimer
	default:
		return s, fmt.Errorf("%w: unknown type %q", ErrStatsd, spec)
	}
	if s.Kind != KindCounter && rate != 1.0 {
		return s, fmt.Errorf("%w: sample rate on a %s line", ErrStatsd, s.Kind)
	}

	if len(valText) == 0 {
		return s, fmt.Errorf("%w: empty value", ErrStatsd)
	}
	if s.Kind == KindGauge && (valText[0] == '+' || valText[0] == '-') {
		s.GaugeDelta = true
	}
	v, err := strconv.ParseFloat(string(valText), 64)
	if err != nil {
		return s, fmt.Errorf("%w: value %q", ErrStatsd, valText)
	}
	if v != v || v > 1e308 || v < -1e308 { // NaN and infinities poison aggregates
		return s, fmt.Errorf("%w: non-finite value %q", ErrStatsd, valText)
	}
	if s.Kind == KindTimer && v < 0 {
		return s, fmt.Errorf("%w: negative timer %q", ErrStatsd, valText)
	}

	s.Bucket = string(bucket)
	s.Value = v
	s.SampleRate = rate
	return s, nil
}

// bucketByteOK admits the conventional statsd bucket alphabet. The
// bucket becomes a metric NAME attribute and a Carbon path component,
// so whitespace, XML metacharacters and control bytes are refused at
// the door rather than escaped downstream.
func bucketByteOK(b byte) bool {
	switch {
	case b >= 'a' && b <= 'z', b >= 'A' && b <= 'Z', b >= '0' && b <= '9':
		return true
	case b == '.' || b == '_' || b == '-':
		return true
	}
	return false
}

// splitLines cuts a datagram into lines, tolerating both \n and \r\n
// and a trailing newline. Empty lines are skipped without error, per
// statsd convention.
func splitLines(pkt []byte, emit func(line []byte)) {
	start := 0
	for i := 0; i <= len(pkt); i++ {
		if i != len(pkt) && pkt[i] != '\n' {
			continue
		}
		line := pkt[start:i]
		start = i + 1
		if len(line) > 0 && line[len(line)-1] == '\r' {
			line = line[:len(line)-1]
		}
		if len(line) > 0 {
			emit(line)
		}
	}
}
