package fabric

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"time"
)

// MaxPushBytes bounds one push request body. A pusher that streams
// forever is cut off and rejected, in the same spirit as gmetad's
// MaxReportBytes.
const MaxPushBytes = 1 << 20

// PushMetric is one metric submitted through the HTTP/JSON push
// endpoint. The body is either a single object or an array of them.
type PushMetric struct {
	// Host attributes the metric to a node; empty means the hub's own
	// host. IP annotates the node's address on first sight.
	Host string `json:"host,omitempty"`
	IP   string `json:"ip,omitempty"`

	// Name and Value are the measurement; Name obeys the statsd bucket
	// alphabet (letters, digits, '.', '_', '-').
	Name  string  `json:"name"`
	Value float64 `json:"value"`

	// Units annotates the metric's UNITS attribute.
	Units string `json:"units,omitempty"`
}

// validate rejects a metric the XML and Carbon layers could not carry
// verbatim.
func (p *PushMetric) validate() error {
	if p.Name == "" {
		return fmt.Errorf("fabric: push metric with empty name")
	}
	for i := 0; i < len(p.Name); i++ {
		if !bucketByteOK(p.Name[i]) {
			return fmt.Errorf("fabric: push metric name %q: byte %q", p.Name, p.Name[i])
		}
	}
	for i := 0; i < len(p.Host); i++ {
		if p.Host[i] < 0x20 || p.Host[i] == 0x7f {
			return fmt.Errorf("fabric: push host %q: control byte", p.Host)
		}
	}
	if p.Value != p.Value || p.Value > 1e308 || p.Value < -1e308 {
		return fmt.Errorf("fabric: push metric %q: non-finite value", p.Name)
	}
	return nil
}

// IngestPush admits a batch of push metrics as gauge levels. The batch
// is validated whole before any of it applies: a request either lands
// completely or is rejected completely, so a pusher never has to guess
// which half of its payload survived.
func (h *Hub) IngestPush(ms []PushMetric) error {
	for i := range ms {
		if err := ms[i].validate(); err != nil {
			return err
		}
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, p := range ms {
		host, ip := p.Host, p.IP
		if host == "" {
			host, ip = h.cfg.Host, h.cfg.IP
		}
		h.touchHost(host, ip)
		key := aggKey{host: host, bucket: p.Name}
		a := h.aggs[key]
		if a == nil || a.kind != KindGauge {
			a = &agg{kind: KindGauge}
			h.aggs[key] = a
		}
		a.level = p.Value
		a.units = p.Units
		a.source = pushSource
		a.dirty = true
	}
	h.acct.pushMetrics.Add(int64(len(ms)))
	return nil
}

// PushHandler returns the HTTP handler of the push endpoint: POST a
// JSON object or array of objects ({"host","name","value","units"}),
// get 202 with the accepted count. Admitted metrics surface in the
// served cluster XML after the next flush.
func (h *Hub) PushHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			h.acct.pushRejects.Add(1)
			http.Error(w, "fabric: push requires POST", http.StatusMethodNotAllowed)
			return
		}
		body, err := io.ReadAll(io.LimitReader(r.Body, MaxPushBytes+1))
		if err != nil {
			h.acct.pushRejects.Add(1)
			http.Error(w, "fabric: read body: "+err.Error(), http.StatusBadRequest)
			return
		}
		if len(body) > MaxPushBytes {
			h.acct.pushRejects.Add(1)
			http.Error(w, fmt.Sprintf("fabric: body exceeds %d bytes", MaxPushBytes), http.StatusRequestEntityTooLarge)
			return
		}
		ms, err := decodePush(body)
		if err == nil {
			err = h.IngestPush(ms)
		}
		if err != nil {
			h.acct.pushRejects.Add(1)
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		h.acct.pushRequests.Add(1)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusAccepted)
		fmt.Fprintf(w, "{\"accepted\":%d}\n", len(ms))
	})
}

// decodePush parses a push body: a JSON array of metrics, or a single
// metric object.
func decodePush(body []byte) ([]PushMetric, error) {
	i := 0
	for i < len(body) && (body[i] == ' ' || body[i] == '\t' || body[i] == '\n' || body[i] == '\r') {
		i++
	}
	if i == len(body) {
		return nil, fmt.Errorf("fabric: empty push body")
	}
	if body[i] == '[' {
		var ms []PushMetric
		if err := json.Unmarshal(body, &ms); err != nil {
			return nil, fmt.Errorf("fabric: push JSON: %w", err)
		}
		if len(ms) == 0 {
			return nil, fmt.Errorf("fabric: empty push array")
		}
		return ms, nil
	}
	var m PushMetric
	if err := json.Unmarshal(body, &m); err != nil {
		return nil, fmt.Errorf("fabric: push JSON: %w", err)
	}
	return []PushMetric{m}, nil
}

// ServePush serves the push endpoint on l until the listener closes
// (Close closes it). The returned error is http.Server.Serve's.
func (h *Hub) ServePush(l net.Listener) error {
	h.lifeMu.Lock()
	if h.closed {
		h.lifeMu.Unlock()
		_ = l.Close()
		return nil
	}
	h.listeners = append(h.listeners, l)
	h.lifeMu.Unlock()
	srv := &http.Server{
		Handler:           h.PushHandler(),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
		IdleTimeout:       time.Minute,
	}
	return srv.Serve(l)
}
