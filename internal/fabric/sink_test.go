package fabric

import (
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"ganglia/internal/clock"
	"ganglia/internal/transport"
)

// recordSink collects every batch it is flushed; optionally failing or
// blocking under test control.
type recordSink struct {
	mu      sync.Mutex
	batches [][]Sample
	fail    bool
	gate    chan struct{} // when non-nil, Flush blocks until it closes
}

func (r *recordSink) Name() string { return "record" }

func (r *recordSink) Flush(batch []Sample) error {
	if r.gate != nil {
		<-r.gate
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.fail {
		return fmt.Errorf("record: induced failure")
	}
	r.batches = append(r.batches, batch)
	return nil
}

func (r *recordSink) total() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, b := range r.batches {
		n += len(b)
	}
	return n
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

func samplesN(n int) []Sample {
	out := make([]Sample, n)
	for i := range out {
		out[i] = Sample{Cluster: "c", Host: "h", Metric: fmt.Sprintf("m%d", i), Value: float64(i)}
	}
	return out
}

func TestSinkManagerDelivers(t *testing.T) {
	m := NewSinkManager(SinkConfig{})
	rs := &recordSink{}
	m.Add(rs)
	m.Offer(samplesN(10))
	waitFor(t, "delivery", func() bool { return rs.total() == 10 })
	if !m.Drain(5 * time.Second) {
		t.Fatal("Drain timed out")
	}
	s := m.Accounting().Snapshot()
	if s.Offered != 10 || s.SinkDrops != 0 || s.SinkFlushes == 0 {
		t.Errorf("accounting: %+v", s)
	}
}

func TestSinkManagerDropOldest(t *testing.T) {
	m := NewSinkManager(SinkConfig{QueueCap: 8, BatchSize: 4})
	rs := &recordSink{gate: make(chan struct{})}
	m.Add(rs)
	// Wake the flusher so it parks inside the gated Flush, then flood
	// the queue while nothing drains.
	m.Offer(samplesN(1))
	for i := 0; i < 10; i++ {
		m.Offer(samplesN(3))
	}
	s := m.Accounting().Snapshot()
	if s.QueueHighWater > 8 {
		t.Errorf("queue high water %d exceeds cap 8", s.QueueHighWater)
	}
	if s.SinkDrops == 0 {
		t.Error("flooding a gated sink dropped nothing")
	}
	// Conservation: everything offered is either dropped or still
	// queued or in the in-flight batch.
	close(rs.gate)
	if !m.Drain(5 * time.Second) {
		t.Fatal("Drain timed out")
	}
	s = m.Accounting().Snapshot()
	if got := int64(rs.total()) + s.SinkDrops; got != s.Offered {
		t.Errorf("delivered %d + dropped %d != offered %d", rs.total(), s.SinkDrops, s.Offered)
	}
}

func TestSinkManagerFailedFlushCountsDrops(t *testing.T) {
	m := NewSinkManager(SinkConfig{})
	rs := &recordSink{fail: true}
	m.Add(rs)
	m.Offer(samplesN(5))
	waitFor(t, "failure accounting", func() bool {
		s := m.Accounting().Snapshot()
		return s.SinkFlushFails > 0 && s.SinkDrops == 5
	})
	m.Close()
}

func TestSinkManagerPanicIsolated(t *testing.T) {
	m := NewSinkManager(SinkConfig{})
	m.Add(panicSink{})
	rs := &recordSink{}
	m.Add(rs)
	m.Offer(samplesN(3))
	waitFor(t, "healthy sink delivery", func() bool { return rs.total() == 3 })
	waitFor(t, "panic accounting", func() bool { return m.Accounting().Snapshot().SinkPanics == 1 })
	if !m.Drain(5 * time.Second) {
		t.Fatal("Drain timed out")
	}
}

type panicSink struct{}

func (panicSink) Name() string               { return "panic" }
func (panicSink) Flush(batch []Sample) error { panic("sink bug") }

// TestSinkFanoutChaos is the -race stress test of the egress fabric: a
// Carbon sink pointed at a target that refuses, hangs or drips under
// FaultNetwork chaos while producers flood the manager. The invariants:
// the bounded queue never exceeds its cap, every loss is a counted
// drop, and every flusher goroutine exits after Drain.
func TestSinkFanoutChaos(t *testing.T) {
	before := runtime.NumGoroutine()

	inner := transport.NewInMemNetwork()
	clk := clock.NewVirtual(time.Unix(1_057_000_000, 0))
	fn := transport.NewFaultNetwork(inner, 1, clk)

	// A healthy listener behind the faults, so hang/drip modes have a
	// real peer to accept.
	l, err := inner.Listen("carbon:2003")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	cc := &carbonCollector{}
	go cc.serve(l)

	const queueCap = 64
	m := NewSinkManager(SinkConfig{QueueCap: queueCap, BatchSize: 16})
	m.Add(NewCarbonSink(fn, "carbon:2003", "", 200*time.Millisecond))
	m.Add(&PromSink{})

	// Phase 1: the target refuses every dial, so flushes must fail and
	// their samples must land in the drop counters, not vanish.
	fn.SetPlan("carbon:2003", transport.FaultPlan{Mode: transport.FaultRefuse})
	m.Offer(samplesN(7))
	waitFor(t, "refused flush accounting", func() bool {
		s := m.Accounting().Snapshot()
		return s.SinkFlushFails > 0 && s.SinkDrops > 0
	})

	// Phase 2: producers flood the manager while the fault mode churns
	// between refuse, hang and slow-drip.
	modes := []transport.FaultPlan{
		{Mode: transport.FaultRefuse},
		{Mode: transport.FaultHang},
		{Mode: transport.FaultSlowDrip},
	}
	var wg sync.WaitGroup
	for p := 0; p < 4; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if i%10 == 0 {
					fn.SetPlan("carbon:2003", modes[(p+i)%len(modes)])
				}
				m.Offer(samplesN(7))
			}
		}(p)
	}
	wg.Wait()

	if !m.Drain(10 * time.Second) {
		t.Fatal("Drain timed out under chaos")
	}
	s := m.Accounting().Snapshot()
	if s.QueueHighWater > queueCap {
		t.Errorf("queue high water %d exceeds cap %d", s.QueueHighWater, queueCap)
	}
	if want := int64(4*50*7 + 7); s.Offered != want {
		t.Errorf("offered = %d, want %d", s.Offered, want)
	}
	if s.SinkFlushFails == 0 || s.SinkDrops == 0 {
		t.Errorf("chaos produced no counted failures: %+v", s)
	}
	if s.SinkPanics != 0 {
		t.Errorf("sink panics under chaos: %+v", s)
	}

	// Every flusher must be gone; give lingering collector goroutines a
	// moment to unwind before declaring a leak.
	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines: before=%d after=%d\n%s",
				before, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}
