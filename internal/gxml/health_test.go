package gxml

import (
	"bytes"
	"reflect"
	"testing"
)

func TestSourceHealthRoundTrip(t *testing.T) {
	// A grid's SOURCE_HEALTH records survive write -> parse intact,
	// including a down source's error text with XML-hostile characters,
	// and land on the grid that declared them — not an ancestor.
	rep := sampleReport()
	rep.Grids[0].Health = []*SourceHealth{
		{Name: "Meteor", Status: "up", ActiveAddr: "head-b:8649"},
		{Name: "attic", Status: "down", ActiveAddr: "attic:8652",
			DownSince: 1_057_000_100,
			LastError: "dial attic:8652: \"refused\" <&>\nsecond line"},
	}
	rep.Grids[0].Grids[0].Health = []*SourceHealth{
		{Name: "inner", Status: "up", ActiveAddr: "inner:8649"},
	}

	for _, withDTD := range []bool{false, true} {
		var buf bytes.Buffer
		var err error
		if withDTD {
			err = WriteReportWithDTD(&buf, rep)
		} else {
			err = WriteReport(&buf, rep)
		}
		if err != nil {
			t.Fatalf("write (dtd=%v): %v", withDTD, err)
		}
		got, err := Parse(&buf)
		if err != nil {
			t.Fatalf("parse (dtd=%v): %v", withDTD, err)
		}
		if !reflect.DeepEqual(got.Grids[0].Health, rep.Grids[0].Health) {
			t.Errorf("outer health (dtd=%v):\n got %+v\nwant %+v",
				withDTD, got.Grids[0].Health[1], rep.Grids[0].Health[1])
		}
		if !reflect.DeepEqual(got.Grids[0].Grids[0].Health, rep.Grids[0].Grids[0].Health) {
			t.Errorf("nested health (dtd=%v): %+v", withDTD, got.Grids[0].Grids[0].Health)
		}
	}
}

func TestSourceHealthRequiresGrid(t *testing.T) {
	// The element is only meaningful inside a GRID; anywhere else is a
	// nesting violation, same as the rest of the dialect.
	doc := `<GANGLIA_XML VERSION="1" SOURCE="gmetad">` +
		`<CLUSTER NAME="c" OWNER="" URL="" LOCALTIME="0">` +
		`<SOURCE_HEALTH NAME="x" STATUS="up"/></CLUSTER></GANGLIA_XML>`
	if _, err := Parse(bytes.NewReader([]byte(doc))); err == nil {
		t.Error("SOURCE_HEALTH accepted outside GRID")
	}
}
