package gxml

import (
	"bufio"
	"bytes"
	"io"
	"strconv"

	"ganglia/internal/metric"
	"ganglia/internal/summary"
)

// Writer serializes report trees and subtrees. It wraps the destination
// in a buffered writer and latches the first error, so callers emit a
// whole document and check once.
type Writer struct {
	bw  *bufio.Writer
	err error
}

// NewWriter returns a Writer on w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{bw: bufio.NewWriterSize(w, 32*1024)}
}

// Flush drains the buffer and returns the first error encountered.
func (w *Writer) Flush() error {
	if w.err != nil {
		return w.err
	}
	return w.bw.Flush()
}

func (w *Writer) str(s string) {
	if w.err == nil {
		_, w.err = w.bw.WriteString(s)
	}
}

func (w *Writer) attr(name, value string) {
	w.str(" ")
	w.str(name)
	w.str(`="`)
	w.escaped(value)
	w.str(`"`)
}

func (w *Writer) attrInt(name string, v int64) {
	w.str(" ")
	w.str(name)
	w.str(`="`)
	if w.err == nil {
		var buf [20]byte
		_, w.err = w.bw.Write(strconv.AppendInt(buf[:0], v, 10))
	}
	w.str(`"`)
}

func (w *Writer) attrFloat(name string, v float64) {
	w.str(" ")
	w.str(name)
	w.str(`="`)
	if w.err == nil {
		var buf [32]byte
		_, w.err = w.bw.Write(strconv.AppendFloat(buf[:0], v, 'f', -1, 64))
	}
	w.str(`"`)
}

// escaped writes s with the five XML attribute metacharacters escaped,
// plus literal whitespace controls as character references — a raw
// newline inside an attribute (multi-address dial errors join with
// newlines) would otherwise be normalized to a space by conformant
// parsers and break line-oriented consumers.
func (w *Writer) escaped(s string) {
	if w.err != nil {
		return
	}
	last := 0
	for i := 0; i < len(s); i++ {
		var esc string
		switch s[i] {
		case '&':
			esc = "&amp;"
		case '<':
			esc = "&lt;"
		case '>':
			esc = "&gt;"
		case '"':
			esc = "&quot;"
		case '\'':
			esc = "&apos;"
		case '\n':
			esc = "&#10;"
		case '\r':
			esc = "&#13;"
		case '\t':
			esc = "&#9;"
		default:
			continue
		}
		w.str(s[last:i])
		w.str(esc)
		last = i + 1
	}
	w.str(s[last:])
}

// WriteReport serializes a complete GANGLIA_XML document.
func WriteReport(dst io.Writer, r *Report) error {
	w := NewWriter(dst)
	w.Report(r)
	return w.Flush()
}

// RenderReport serializes a complete GANGLIA_XML document to a byte
// slice, for callers that reuse one rendering across many writes
// (gmetad's query-response cache serves the same bytes to every client
// of a poll epoch).
func RenderReport(r *Report) ([]byte, error) {
	var buf bytes.Buffer
	if err := WriteReport(&buf, r); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Report emits a complete document.
func (w *Writer) Report(r *Report) {
	version := r.Version
	if version == "" {
		version = Version
	}
	w.str(`<?xml version="1.0" encoding="ISO-8859-1" standalone="yes"?>` + "\n")
	w.str("<GANGLIA_XML")
	w.attr("VERSION", version)
	w.attr("SOURCE", r.Source)
	w.str(">\n")
	for _, c := range r.Clusters {
		w.Cluster(c)
	}
	for _, g := range r.Grids {
		w.Grid(g)
	}
	for _, h := range r.Histories {
		w.HistoryElem(h)
	}
	w.str("</GANGLIA_XML>\n")
}

// Grid emits a GRID element. A grid with a non-nil Summary and no
// children is written in summary form; otherwise its clusters and
// nested grids are written recursively.
func (w *Writer) Grid(g *Grid) {
	w.str("<GRID")
	w.attr("NAME", g.Name)
	w.attr("AUTHORITY", g.Authority)
	w.attrInt("LOCALTIME", g.LocalTime)
	w.str(">\n")
	for _, sh := range g.Health {
		w.SourceHealthElem(sh)
	}
	if g.Summary != nil && len(g.Clusters) == 0 && len(g.Grids) == 0 {
		w.SummaryBody(g.Summary)
	} else {
		for _, c := range g.Clusters {
			w.Cluster(c)
		}
		for _, child := range g.Grids {
			w.Grid(child)
		}
	}
	w.str("</GRID>\n")
}

// Cluster emits a CLUSTER element, in full-resolution form when Hosts
// is populated and summary form when only Summary is set.
func (w *Writer) Cluster(c *Cluster) {
	w.str("<CLUSTER")
	w.attr("NAME", c.Name)
	w.attr("OWNER", c.Owner)
	w.attr("URL", c.URL)
	w.attrInt("LOCALTIME", c.LocalTime)
	w.str(">\n")
	if len(c.Hosts) == 0 && c.Summary != nil {
		w.SummaryBody(c.Summary)
	} else {
		for _, h := range c.Hosts {
			w.Host(h)
		}
	}
	w.str("</CLUSTER>\n")
}

// Host emits a HOST element with its metrics.
func (w *Writer) Host(h *Host) {
	w.str("<HOST")
	w.attr("NAME", h.Name)
	w.attr("IP", h.IP)
	w.attrInt("REPORTED", h.Reported)
	w.attrInt("TN", int64(h.TN))
	w.attrInt("TMAX", int64(h.TMAX))
	w.attrInt("DMAX", int64(h.DMAX))
	w.str(">\n")
	for i := range h.Metrics {
		w.Metric(&h.Metrics[i])
	}
	w.str("</HOST>\n")
}

// Metric emits a METRIC element.
func (w *Writer) Metric(m *metric.Metric) {
	w.str("<METRIC")
	w.attr("NAME", m.Name)
	w.attr("VAL", m.Val.Text())
	w.attr("TYPE", m.Val.Type().String())
	w.attr("UNITS", m.Units)
	w.attrInt("TN", int64(m.TN))
	w.attrInt("TMAX", int64(m.TMAX))
	w.attrInt("DMAX", int64(m.DMAX))
	w.attr("SLOPE", m.Slope.String())
	w.attr("SOURCE", m.Source)
	w.str("/>\n")
}

// SourceHealthElem emits a SOURCE_HEALTH element. DOWN_SINCE and
// LAST_ERROR are omitted for healthy sources, so the steady-state
// report stays compact.
func (w *Writer) SourceHealthElem(sh *SourceHealth) {
	w.str("<SOURCE_HEALTH")
	w.attr("NAME", sh.Name)
	w.attr("STATUS", sh.Status)
	w.attr("ACTIVE", sh.ActiveAddr)
	if sh.DownSince != 0 {
		w.attrInt("DOWN_SINCE", sh.DownSince)
	}
	if sh.LastError != "" {
		w.attr("LAST_ERROR", sh.LastError)
	}
	w.str("/>\n")
}

// SummaryBody emits the summary form shared by grids and clusters: one
// HOSTS tag followed by one METRICS tag per reduced metric, exactly the
// shape of the paper's fig 3 nested "ATTIC" grid.
func (w *Writer) SummaryBody(s *summary.Summary) {
	w.str("<HOSTS")
	w.attrInt("UP", int64(s.HostsUp))
	w.attrInt("DOWN", int64(s.HostsDown))
	w.str("/>\n")
	for _, name := range s.Names() {
		m := s.Metrics[name]
		w.str("<METRICS")
		w.attr("NAME", m.Name)
		w.attrFloat("SUM", m.Sum)
		w.attrInt("NUM", int64(m.Num))
		w.attr("TYPE", m.Type.String())
		w.attr("UNITS", m.Units)
		if m.SumSq != 0 {
			// Extension: the sum of squares restores the standard
			// deviation the paper's SUM/NUM reductions cannot express.
			// Peers that do not know the attribute ignore it.
			w.attrFloat("SUMSQ", m.SumSq)
		}
		w.str("/>\n")
	}
}
