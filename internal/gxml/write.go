package gxml

import (
	"bufio"
	"bytes"
	"io"
	"strconv"

	"ganglia/internal/metric"
	"ganglia/internal/summary"
)

// XMLDecl is the declaration opening every Ganglia XML document.
const XMLDecl = `<?xml version="1.0" encoding="ISO-8859-1" standalone="yes"?>` + "\n"

// sink is the writer contract the serializer needs. *bufio.Writer and
// *bytes.Buffer both satisfy it; the latter lets render-to-memory
// callers (fragment caches, response caches) skip the bufio layer and
// its final copy entirely.
type sink interface {
	Write([]byte) (int, error)
	WriteString(string) (int, error)
}

// Writer serializes report trees and subtrees. Destinations that are
// already in-memory buffers are written directly; anything else is
// wrapped in a buffered writer. The first error is latched, so callers
// emit a whole document and check once.
type Writer struct {
	out sink
	bw  *bufio.Writer // non-nil when out buffers an underlying io.Writer
	err error
	// scratch backs numeric attribute formatting. A function-local
	// buffer would escape through the sink interface and cost one heap
	// allocation per attribute — per POINT on the history path.
	scratch [40]byte
}

// NewWriter returns a Writer on w. A *bytes.Buffer destination is
// written without intermediate buffering.
func NewWriter(w io.Writer) *Writer {
	if buf, ok := w.(*bytes.Buffer); ok {
		return &Writer{out: buf}
	}
	bw := bufio.NewWriterSize(w, 32*1024)
	return &Writer{out: bw, bw: bw}
}

// Flush drains the buffer and returns the first error encountered.
func (w *Writer) Flush() error {
	if w.err != nil {
		return w.err
	}
	if w.bw != nil {
		return w.bw.Flush()
	}
	return nil
}

// Raw writes pre-serialized bytes verbatim: the splice operation behind
// gmetad's fragment cache, where a source's subtree is rendered once
// per poll generation and stitched into many responses.
func (w *Writer) Raw(b []byte) {
	if w.err == nil {
		_, w.err = w.out.Write(b)
	}
}

func (w *Writer) str(s string) {
	if w.err == nil {
		_, w.err = w.out.WriteString(s)
	}
}

func (w *Writer) attr(name, value string) {
	w.str(" ")
	w.str(name)
	w.str(`="`)
	w.escaped(value)
	w.str(`"`)
}

func (w *Writer) attrInt(name string, v int64) {
	w.str(" ")
	w.str(name)
	w.str(`="`)
	if w.err == nil {
		_, w.err = w.out.Write(strconv.AppendInt(w.scratch[:0], v, 10))
	}
	w.str(`"`)
}

func (w *Writer) attrFloat(name string, v float64) {
	w.str(" ")
	w.str(name)
	w.str(`="`)
	if w.err == nil {
		_, w.err = w.out.Write(strconv.AppendFloat(w.scratch[:0], v, 'f', -1, 64))
	}
	w.str(`"`)
}

// escaped writes s with the five XML attribute metacharacters escaped,
// plus literal whitespace controls as character references — a raw
// newline inside an attribute (multi-address dial errors join with
// newlines) would otherwise be normalized to a space by conformant
// parsers and break line-oriented consumers.
func (w *Writer) escaped(s string) {
	if w.err != nil {
		return
	}
	last := 0
	for i := 0; i < len(s); i++ {
		esc := escapeOf(s[i])
		if esc == "" {
			continue
		}
		w.str(s[last:i])
		w.str(esc)
		last = i + 1
	}
	w.str(s[last:])
}

// escapeOf returns the character reference for b, or "" when b passes
// through unescaped.
func escapeOf(b byte) string {
	switch b {
	case '&':
		return "&amp;"
	case '<':
		return "&lt;"
	case '>':
		return "&gt;"
	case '"':
		return "&quot;"
	case '\'':
		return "&apos;"
	case '\n':
		return "&#10;"
	case '\r':
		return "&#13;"
	case '\t':
		return "&#9;"
	}
	return ""
}

// AppendEscaped appends s to dst with the attribute escaping the Writer
// applies, for callers that precompute header bytes.
func AppendEscaped(dst []byte, s string) []byte {
	last := 0
	for i := 0; i < len(s); i++ {
		esc := escapeOf(s[i])
		if esc == "" {
			continue
		}
		dst = append(dst, s[last:i]...)
		dst = append(dst, esc...)
		last = i + 1
	}
	return append(dst, s[last:]...)
}

// WriteReport serializes a complete GANGLIA_XML document.
func WriteReport(dst io.Writer, r *Report) error {
	w := NewWriter(dst)
	w.Report(r)
	return w.Flush()
}

// RenderReport serializes a complete GANGLIA_XML document to a byte
// slice, for callers that reuse one rendering across many writes
// (gmetad's query-response cache serves the same bytes to every client
// of a poll epoch).
func RenderReport(r *Report) ([]byte, error) {
	var buf bytes.Buffer
	if err := WriteReport(&buf, r); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Report emits a complete document.
func (w *Writer) Report(r *Report) {
	w.OpenDoc(r.Version, r.Source)
	for _, c := range r.Clusters {
		w.Cluster(c)
	}
	for _, g := range r.Grids {
		w.Grid(g)
	}
	for _, h := range r.Histories {
		w.HistoryElem(h)
	}
	w.CloseDoc()
}

// OpenDoc emits the XML declaration and the GANGLIA_XML open tag —
// the streaming entry point for answers composed element by element
// instead of through a Report tree. An empty version defaults to
// Version. Balance with CloseDoc.
func (w *Writer) OpenDoc(version, source string) {
	if version == "" {
		version = Version
	}
	w.str(XMLDecl)
	w.str("<GANGLIA_XML")
	w.attr("VERSION", version)
	w.attr("SOURCE", source)
	w.str(">\n")
}

// CloseDoc emits the GANGLIA_XML close tag.
func (w *Writer) CloseDoc() { w.str("</GANGLIA_XML>\n") }

// OpenGrid emits a GRID element's open tag. Callers emit the body
// (health, summary, or children) and balance with CloseGrid.
func (w *Writer) OpenGrid(name, authority string, localtime int64) {
	w.str("<GRID")
	w.attr("NAME", name)
	w.attr("AUTHORITY", authority)
	w.attrInt("LOCALTIME", localtime)
	w.str(">\n")
}

// CloseGrid emits a GRID element's close tag.
func (w *Writer) CloseGrid() { w.str("</GRID>\n") }

// Grid emits a GRID element. A grid with a non-nil Summary and no
// children is written in summary form; otherwise its clusters and
// nested grids are written recursively.
func (w *Writer) Grid(g *Grid) {
	w.OpenGrid(g.Name, g.Authority, g.LocalTime)
	for _, sh := range g.Health {
		w.SourceHealthElem(sh)
	}
	if g.Summary != nil && len(g.Clusters) == 0 && len(g.Grids) == 0 {
		w.SummaryBody(g.Summary)
	} else {
		for _, c := range g.Clusters {
			w.Cluster(c)
		}
		for _, child := range g.Grids {
			w.Grid(child)
		}
	}
	w.CloseGrid()
}

// GridAged emits a grid subtree with every host's soft-state TN values
// advanced by age, directly from the shared tree — the streaming
// equivalent of deep-copying the subtree through an aged clone and
// serializing the copy. Health records are not emitted: they belong to
// the serving daemon's own grid, not to re-served child trees.
func (w *Writer) GridAged(g *Grid, age uint32) {
	w.OpenGrid(g.Name, g.Authority, g.LocalTime)
	if g.Summary != nil && len(g.Clusters) == 0 && len(g.Grids) == 0 {
		w.SummaryBody(g.Summary)
	} else {
		for _, c := range g.Clusters {
			if len(c.Hosts) == 0 && c.Summary != nil {
				w.Cluster(c)
				continue
			}
			w.OpenCluster(c.Name, c.Owner, c.URL, c.LocalTime)
			for _, h := range c.Hosts {
				w.HostAged(h, age)
			}
			w.CloseCluster()
		}
		for _, child := range g.Grids {
			w.GridAged(child, age)
		}
	}
	w.CloseGrid()
}

// OpenCluster emits a CLUSTER element's open tag; balance with
// CloseCluster.
func (w *Writer) OpenCluster(name, owner, url string, localtime int64) {
	w.str("<CLUSTER")
	w.attr("NAME", name)
	w.attr("OWNER", owner)
	w.attr("URL", url)
	w.attrInt("LOCALTIME", localtime)
	w.str(">\n")
}

// CloseCluster emits a CLUSTER element's close tag.
func (w *Writer) CloseCluster() { w.str("</CLUSTER>\n") }

// Cluster emits a CLUSTER element, in full-resolution form when Hosts
// is populated and summary form when only Summary is set.
func (w *Writer) Cluster(c *Cluster) {
	w.OpenCluster(c.Name, c.Owner, c.URL, c.LocalTime)
	if len(c.Hosts) == 0 && c.Summary != nil {
		w.SummaryBody(c.Summary)
	} else {
		for _, h := range c.Hosts {
			w.Host(h)
		}
	}
	w.CloseCluster()
}

// Host emits a HOST element with its metrics.
func (w *Writer) Host(h *Host) { w.HostAged(h, 0) }

// HostAged emits a HOST element with its metrics, the host's and every
// metric's TN advanced by age — soft-state aging applied during
// serialization instead of through a deep copy.
func (w *Writer) HostAged(h *Host, age uint32) {
	w.OpenHostAged(h, age)
	for i := range h.Metrics {
		w.MetricAged(&h.Metrics[i], age)
	}
	w.CloseHost()
}

// OpenHostAged emits a HOST open tag with TN advanced by age; balance
// with CloseHost. Callers that filter metrics (depth-3 queries) emit
// their own MetricAged selection between the two.
func (w *Writer) OpenHostAged(h *Host, age uint32) {
	w.str("<HOST")
	w.attr("NAME", h.Name)
	w.attr("IP", h.IP)
	w.attrInt("REPORTED", h.Reported)
	w.attrInt("TN", int64(h.TN+age))
	w.attrInt("TMAX", int64(h.TMAX))
	w.attrInt("DMAX", int64(h.DMAX))
	w.str(">\n")
}

// CloseHost emits a HOST element's close tag.
func (w *Writer) CloseHost() { w.str("</HOST>\n") }

// Metric emits a METRIC element.
func (w *Writer) Metric(m *metric.Metric) { w.MetricAged(m, 0) }

// MetricAged emits a METRIC element with TN advanced by age.
func (w *Writer) MetricAged(m *metric.Metric, age uint32) {
	w.str("<METRIC")
	w.attr("NAME", m.Name)
	w.attr("VAL", m.Val.Text())
	w.attr("TYPE", m.Val.Type().String())
	w.attr("UNITS", m.Units)
	w.attrInt("TN", int64(m.TN+age))
	w.attrInt("TMAX", int64(m.TMAX))
	w.attrInt("DMAX", int64(m.DMAX))
	w.attr("SLOPE", m.Slope.String())
	w.attr("SOURCE", m.Source)
	w.str("/>\n")
}

// SourceHealthElem emits a SOURCE_HEALTH element. DOWN_SINCE and
// LAST_ERROR are omitted for healthy sources, so the steady-state
// report stays compact.
func (w *Writer) SourceHealthElem(sh *SourceHealth) {
	w.str("<SOURCE_HEALTH")
	w.attr("NAME", sh.Name)
	w.attr("STATUS", sh.Status)
	w.attr("ACTIVE", sh.ActiveAddr)
	if sh.DownSince != 0 {
		w.attrInt("DOWN_SINCE", sh.DownSince)
	}
	if sh.LastError != "" {
		w.attr("LAST_ERROR", sh.LastError)
	}
	w.str("/>\n")
}

// SummaryBody emits the summary form shared by grids and clusters: one
// HOSTS tag followed by one METRICS tag per reduced metric, exactly the
// shape of the paper's fig 3 nested "ATTIC" grid.
func (w *Writer) SummaryBody(s *summary.Summary) {
	w.str("<HOSTS")
	w.attrInt("UP", int64(s.HostsUp))
	w.attrInt("DOWN", int64(s.HostsDown))
	w.str("/>\n")
	for _, name := range s.Names() {
		m := s.Metrics[name]
		w.str("<METRICS")
		w.attr("NAME", m.Name)
		w.attrFloat("SUM", m.Sum)
		w.attrInt("NUM", int64(m.Num))
		w.attr("TYPE", m.Type.String())
		w.attr("UNITS", m.Units)
		if m.SumSq != 0 {
			// Extension: the sum of squares restores the standard
			// deviation the paper's SUM/NUM reductions cannot express.
			// Peers that do not know the attribute ignore it.
			w.attrFloat("SUMSQ", m.SumSq)
		}
		w.str("/>\n")
	}
}
