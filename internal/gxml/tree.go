// Package gxml implements the Ganglia XML language (paper fig 3): the
// recursive GRID / CLUSTER / HOST / METRIC report format exchanged over
// TCP between gmond, gmetad and viewers, including the GRID tag and
// summary form (HOSTS / METRICS tags) introduced by the N-level design.
//
// The package provides a document tree, a writer that serializes a tree
// (or any subtree — the query engine depends on that), and a streaming
// SAX-like parser. The parser is hand-rolled for the Ganglia dialect:
// elements carry only attributes, never text content, so it avoids the
// generality (and cost) of a full XML library — the same reasoning that
// led the paper's authors to reject XPath engines as "too heavyweight
// and inefficient" (§2.3).
package gxml

import (
	"ganglia/internal/metric"
	"ganglia/internal/summary"
)

// Version is the protocol version stamped on reports; 2.5.4 is the
// paper's "N-level code ... currently in beta testing phase".
const Version = "2.5.4"

// Host is a HOST element: one cluster node at full resolution.
type Host struct {
	Name string
	IP   string
	// Reported is the Unix time of the host's last heartbeat.
	Reported int64
	// TN is the seconds elapsed since Reported, from the perspective
	// of the serializing daemon.
	TN uint32
	// TMAX and DMAX carry the heartbeat's soft-state lifetimes.
	TMAX uint32
	DMAX uint32

	Metrics []metric.Metric
}

// Up reports whether the host's heartbeat is fresh enough to consider
// the node alive (the same 4×TMAX rule as metric staleness).
func (h *Host) Up() bool {
	return h.TMAX == 0 || h.TN <= 4*h.TMAX
}

// Cluster is a CLUSTER element. In full-resolution form Hosts is
// populated; in summary form (the local cluster-summary query filter,
// §2.3.2) Summary is set instead.
type Cluster struct {
	Name      string
	Owner     string
	URL       string
	LocalTime int64

	Hosts   []*Host
	Summary *summary.Summary
}

// Summarize computes the additive reduction over the cluster's hosts.
// Metrics of down hosts do not contribute to the sums. A cluster
// already in summary form returns a clone of its summary.
func (c *Cluster) Summarize() *summary.Summary {
	if len(c.Hosts) == 0 && c.Summary != nil {
		return c.Summary.Clone()
	}
	s := summary.New()
	for _, h := range c.Hosts {
		up := h.Up()
		s.AddHost(up)
		if !up {
			continue
		}
		for _, m := range h.Metrics {
			s.AddMetric(m)
		}
	}
	return s
}

// SourceHealth is a SOURCE_HEALTH element: the serving gmetad's view of
// one of its data sources' degradation state. Healthy trees carry one
// per source with STATUS "up"; a down source reports when it went down,
// the last error seen, and which replica address was last good — so a
// parent (or viewer) can distinguish "host crashed" from "every poll of
// that branch has failed since 14:02". Old parsers skip the element:
// unknown tags are ignored for forward compatibility.
type SourceHealth struct {
	Name       string
	Status     string // "up" or "down"
	ActiveAddr string // last address that produced a good report
	DownSince  int64  // Unix seconds; zero when up
	LastError  string // most recent poll error; empty when up
}

// Grid is a GRID element: a named collection of clusters and other
// grids (paper §2.2). Authority is the URL of the gmetad that owns the
// grid's full-resolution data; upstream nodes keep the pointer so a
// coarse summary can always be chased to its source.
//
// A grid appears in two forms. The authoritative gmetad reports its own
// grid with Clusters/Grids populated; its parents re-report it in
// summary form with only Summary set.
type Grid struct {
	Name      string
	Authority string
	LocalTime int64

	Clusters []*Cluster
	Grids    []*Grid
	Summary  *summary.Summary

	// Health carries the serving daemon's per-source degradation
	// records, emitted ahead of the grid's children.
	Health []*SourceHealth
}

// Summarize computes the grid's reduction: the merge of its cluster
// summaries and child grid summaries. A grid already in summary form
// returns a clone of that summary.
func (g *Grid) Summarize() *summary.Summary {
	if g.Summary != nil {
		return g.Summary.Clone()
	}
	s := summary.New()
	for _, c := range g.Clusters {
		s.Merge(c.Summarize())
	}
	for _, child := range g.Grids {
		s.Merge(child.Summarize())
	}
	return s
}

// Report is a GANGLIA_XML document. A gmond report carries Clusters
// (exactly one, in practice); a gmetad report carries Grids (one root
// grid describing the daemon's subtree).
type Report struct {
	Version string
	Source  string

	Clusters []*Cluster
	Grids    []*Grid

	// Histories carries archived series in response to history
	// queries; empty for ordinary state reports.
	Histories []*History
}

// Hosts counts the full-resolution hosts present in the report.
func (r *Report) Hosts() int {
	n := 0
	for _, c := range r.Clusters {
		n += len(c.Hosts)
	}
	var walk func(g *Grid)
	walk = func(g *Grid) {
		for _, c := range g.Clusters {
			n += len(c.Hosts)
		}
		for _, child := range g.Grids {
			walk(child)
		}
	}
	for _, g := range r.Grids {
		walk(g)
	}
	return n
}
