package gxml

import (
	"bytes"
	"encoding/xml"
	"io"
	"strings"
	"testing"

	"ganglia/internal/metric"
)

func TestWriteReportWithDTDRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteReportWithDTD(&buf, sampleReport()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "<!DOCTYPE GANGLIA_XML [") {
		t.Fatal("no DTD in output")
	}
	// Our own parser skips the internal subset (brackets contain '>').
	rep, err := Parse(strings.NewReader(out))
	if err != nil {
		t.Fatalf("own parser rejected DTD output: %v", err)
	}
	if rep.Hosts() != 2 {
		t.Errorf("hosts = %d", rep.Hosts())
	}
}

func TestDTDOutputAcceptedByStdlib(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteReportWithDTD(&buf, sampleReport()); err != nil {
		t.Fatal(err)
	}
	dec := xml.NewDecoder(&buf)
	dec.CharsetReader = func(charset string, input io.Reader) (io.Reader, error) {
		return input, nil // output is pure ASCII
	}
	for {
		_, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("stdlib parser rejected DTD output: %v", err)
		}
	}
}

func TestDTDDeclaresEveryEmittedElement(t *testing.T) {
	// Guard against the grammar and the writer drifting apart: every
	// element the writer can emit must be declared in the DTD.
	for _, el := range []string{"GANGLIA_XML", "GRID", "CLUSTER", "HOST", "METRIC", "HOSTS", "METRICS", "HISTORY", "POINT"} {
		if !strings.Contains(DTD, "<!ELEMENT "+el+" ") {
			t.Errorf("DTD missing element %s", el)
		}
	}
	for ty := metric.TypeString; ty <= metric.TypeTimestamp; ty++ {
		if !strings.Contains(DTD, ty.String()) {
			t.Errorf("DTD metric TYPE enum missing %q", ty.String())
		}
	}
	for sl := metric.SlopeZero; sl <= metric.SlopeUnspecified; sl++ {
		if !strings.Contains(DTD, sl.String()) {
			t.Errorf("DTD SLOPE enum missing %q", sl.String())
		}
	}
}
