package gxml

import (
	"strings"
	"testing"
)

// Edge cases for the hand-rolled parser: formatting quirks that other
// Ganglia implementations (or hand-written configs) can legitimately
// produce.
func TestParserFormattingQuirks(t *testing.T) {
	cases := []struct {
		name string
		doc  string
	}{
		{"single-quoted attributes",
			`<GANGLIA_XML VERSION='1' SOURCE='s'><CLUSTER NAME='c' OWNER='' URL='' LOCALTIME='5'></CLUSTER></GANGLIA_XML>`},
		{"whitespace around equals",
			`<GANGLIA_XML VERSION = "1" SOURCE =  "s"><CLUSTER NAME= "c" OWNER="" URL="" LOCALTIME ="5"/></GANGLIA_XML>`},
		{"crlf line endings",
			"<GANGLIA_XML VERSION=\"1\" SOURCE=\"s\">\r\n<CLUSTER NAME=\"c\" OWNER=\"\" URL=\"\" LOCALTIME=\"5\">\r\n</CLUSTER>\r\n</GANGLIA_XML>\r\n"},
		{"tabs between attributes",
			"<GANGLIA_XML\tVERSION=\"1\"\tSOURCE=\"s\"><CLUSTER\tNAME=\"c\" OWNER=\"\" URL=\"\" LOCALTIME=\"5\"/></GANGLIA_XML>"},
		{"space before self-close slash... tolerated end tags",
			`<GANGLIA_XML VERSION="1" SOURCE="s"><CLUSTER NAME="c" OWNER="" URL="" LOCALTIME="5"></CLUSTER ></GANGLIA_XML >`},
		{"newlines inside tag",
			"<GANGLIA_XML\nVERSION=\"1\"\nSOURCE=\"s\">\n<CLUSTER NAME=\"c\" OWNER=\"\" URL=\"\"\nLOCALTIME=\"5\"/>\n</GANGLIA_XML>"},
		{"leading whitespace and trailing junk whitespace",
			"\n\t  <GANGLIA_XML VERSION=\"1\" SOURCE=\"s\"/>\n\n  "},
	}
	for _, tc := range cases {
		rep, err := Parse(strings.NewReader(tc.doc))
		if err != nil {
			t.Errorf("%s: %v", tc.name, err)
			continue
		}
		if rep.Version != "1" || rep.Source != "s" {
			t.Errorf("%s: attrs %q %q", tc.name, rep.Version, rep.Source)
		}
	}
}

func TestParserNumericAttrLeniency(t *testing.T) {
	// Malformed numeric attributes degrade to zero rather than killing
	// the monitor.
	doc := `<GANGLIA_XML VERSION="1" SOURCE="s">
<CLUSTER NAME="c" OWNER="" URL="" LOCALTIME="not-a-number">
<HOST NAME="h" IP="" REPORTED="bogus" TN="-5" TMAX="x" DMAX="">
<METRIC NAME="m" VAL="1" TYPE="int32" TN="" TMAX="" DMAX="" SLOPE="both" SOURCE=""/>
</HOST>
</CLUSTER>
</GANGLIA_XML>`
	rep, err := Parse(strings.NewReader(doc))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	c := rep.Clusters[0]
	if c.LocalTime != 0 {
		t.Errorf("LocalTime = %d", c.LocalTime)
	}
	h := c.Hosts[0]
	if h.Reported != 0 || h.TMAX != 0 {
		t.Errorf("host numerics: %+v", h)
	}
}

func TestParserMissingAttributes(t *testing.T) {
	// Tags with attributes entirely absent still parse (zero values).
	doc := `<GANGLIA_XML><CLUSTER><HOST><METRIC/></HOST></CLUSTER></GANGLIA_XML>`
	rep, err := Parse(strings.NewReader(doc))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if len(rep.Clusters) != 1 || len(rep.Clusters[0].Hosts) != 1 {
		t.Fatalf("shape: %+v", rep)
	}
}

func TestParserDuplicateNames(t *testing.T) {
	// Two HOST tags with the same name: both parse into the tree (the
	// gmetad layer deduplicates at its hash level).
	doc := `<GANGLIA_XML VERSION="1" SOURCE="s">
<CLUSTER NAME="c" OWNER="" URL="" LOCALTIME="0">
<HOST NAME="dup" IP="" REPORTED="0"/><HOST NAME="dup" IP="" REPORTED="0"/>
</CLUSTER>
</GANGLIA_XML>`
	rep, err := Parse(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Clusters[0].Hosts) != 2 {
		t.Errorf("hosts = %d", len(rep.Clusters[0].Hosts))
	}
}

func TestParserDeeplyNestedGrids(t *testing.T) {
	var sb strings.Builder
	sb.WriteString(`<GANGLIA_XML VERSION="1" SOURCE="s">`)
	const depth = 50
	for i := 0; i < depth; i++ {
		sb.WriteString(`<GRID NAME="g" AUTHORITY="a" LOCALTIME="0">`)
	}
	sb.WriteString(`<HOSTS UP="1" DOWN="0"/>`)
	for i := 0; i < depth; i++ {
		sb.WriteString(`</GRID>`)
	}
	sb.WriteString(`</GANGLIA_XML>`)
	rep, err := Parse(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	g := rep.Grids[0]
	n := 1
	for len(g.Grids) > 0 {
		g = g.Grids[0]
		n++
	}
	if n != depth {
		t.Errorf("depth = %d", n)
	}
	if g.Summary == nil || g.Summary.HostsUp != 1 {
		t.Errorf("innermost summary: %+v", g.Summary)
	}
}

func TestParserHugeAttributeRejected(t *testing.T) {
	// A pathological attribute value still terminates (no unbounded
	// buffering beyond the document itself).
	doc := `<GANGLIA_XML VERSION="` + strings.Repeat("x", 1<<20) + `" SOURCE="s"/>`
	rep, err := Parse(strings.NewReader(doc))
	if err != nil {
		t.Fatalf("1MB attribute: %v", err)
	}
	if len(rep.Version) != 1<<20 {
		t.Errorf("version length %d", len(rep.Version))
	}
}
