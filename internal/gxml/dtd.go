package gxml

// DTD is the document type definition of the Ganglia XML language as
// implemented here: the classic 2.5 grammar (GANGLIA_XML, GRID,
// CLUSTER, HOST, METRIC) extended with the N-level summary form
// (HOSTS, METRICS) of paper §2.2 and the archive history elements
// (HISTORY, POINT). Real gmond/gmetad embed their DTD in every report;
// WriteReportWithDTD does the same, and the streaming parser accepts
// (and skips) the declaration, including its internal subset.
const DTD = `<!DOCTYPE GANGLIA_XML [
<!ELEMENT GANGLIA_XML (GRID|CLUSTER|HISTORY)*>
  <!ATTLIST GANGLIA_XML VERSION CDATA #REQUIRED>
  <!ATTLIST GANGLIA_XML SOURCE CDATA #REQUIRED>
<!ELEMENT GRID (CLUSTER | GRID | HOSTS | METRICS | SOURCE_HEALTH)*>
  <!ATTLIST GRID NAME CDATA #REQUIRED>
  <!ATTLIST GRID AUTHORITY CDATA #REQUIRED>
  <!ATTLIST GRID LOCALTIME CDATA #IMPLIED>
<!ELEMENT CLUSTER (HOST | HOSTS | METRICS)*>
  <!ATTLIST CLUSTER NAME CDATA #REQUIRED>
  <!ATTLIST CLUSTER OWNER CDATA #IMPLIED>
  <!ATTLIST CLUSTER URL CDATA #IMPLIED>
  <!ATTLIST CLUSTER LOCALTIME CDATA #REQUIRED>
<!ELEMENT HOST (METRIC)*>
  <!ATTLIST HOST NAME CDATA #REQUIRED>
  <!ATTLIST HOST IP CDATA #REQUIRED>
  <!ATTLIST HOST REPORTED CDATA #REQUIRED>
  <!ATTLIST HOST TN CDATA #IMPLIED>
  <!ATTLIST HOST TMAX CDATA #IMPLIED>
  <!ATTLIST HOST DMAX CDATA #IMPLIED>
<!ELEMENT METRIC EMPTY>
  <!ATTLIST METRIC NAME CDATA #REQUIRED>
  <!ATTLIST METRIC VAL CDATA #REQUIRED>
  <!ATTLIST METRIC TYPE (string | int8 | uint8 | int16 | uint16 | int32 | uint32 | float | double | timestamp) #REQUIRED>
  <!ATTLIST METRIC UNITS CDATA #IMPLIED>
  <!ATTLIST METRIC TN CDATA #IMPLIED>
  <!ATTLIST METRIC TMAX CDATA #IMPLIED>
  <!ATTLIST METRIC DMAX CDATA #IMPLIED>
  <!ATTLIST METRIC SLOPE (zero | positive | negative | both | unspecified) #IMPLIED>
  <!ATTLIST METRIC SOURCE CDATA #IMPLIED>
<!ELEMENT HOSTS EMPTY>
  <!ATTLIST HOSTS UP CDATA #REQUIRED>
  <!ATTLIST HOSTS DOWN CDATA #REQUIRED>
<!ELEMENT METRICS EMPTY>
  <!ATTLIST METRICS NAME CDATA #REQUIRED>
  <!ATTLIST METRICS SUM CDATA #REQUIRED>
  <!ATTLIST METRICS SUMSQ CDATA #IMPLIED>
  <!ATTLIST METRICS NUM CDATA #REQUIRED>
  <!ATTLIST METRICS TYPE CDATA #IMPLIED>
  <!ATTLIST METRICS UNITS CDATA #IMPLIED>
<!ELEMENT SOURCE_HEALTH EMPTY>
  <!ATTLIST SOURCE_HEALTH NAME CDATA #REQUIRED>
  <!ATTLIST SOURCE_HEALTH STATUS (up | down) #REQUIRED>
  <!ATTLIST SOURCE_HEALTH ACTIVE CDATA #IMPLIED>
  <!ATTLIST SOURCE_HEALTH DOWN_SINCE CDATA #IMPLIED>
  <!ATTLIST SOURCE_HEALTH LAST_ERROR CDATA #IMPLIED>
<!ELEMENT HISTORY (POINT)*>
  <!ATTLIST HISTORY CLUSTER CDATA #REQUIRED>
  <!ATTLIST HISTORY HOST CDATA #REQUIRED>
  <!ATTLIST HISTORY METRIC CDATA #REQUIRED>
  <!ATTLIST HISTORY CF CDATA #REQUIRED>
  <!ATTLIST HISTORY STEP CDATA #REQUIRED>
<!ELEMENT POINT EMPTY>
  <!ATTLIST POINT T CDATA #REQUIRED>
  <!ATTLIST POINT V CDATA #REQUIRED>
]>
`

// WriteReportWithDTD serializes a complete document with the DTD
// embedded after the XML declaration, matching the real daemons'
// self-describing output.
func WriteReportWithDTD(dst interface{ Write([]byte) (int, error) }, r *Report) error {
	w := NewWriter(dst)
	version := r.Version
	if version == "" {
		version = Version
	}
	w.str(`<?xml version="1.0" encoding="ISO-8859-1" standalone="yes"?>` + "\n")
	w.str(DTD)
	w.str("<GANGLIA_XML")
	w.attr("VERSION", version)
	w.attr("SOURCE", r.Source)
	w.str(">\n")
	for _, c := range r.Clusters {
		w.Cluster(c)
	}
	for _, g := range r.Grids {
		w.Grid(g)
	}
	for _, h := range r.Histories {
		w.HistoryElem(h)
	}
	w.str("</GANGLIA_XML>\n")
	return w.Flush()
}
