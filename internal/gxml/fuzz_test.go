package gxml

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzParse hammers the hand-rolled streaming parser with arbitrary
// bytes: it must never panic, and any document it accepts must
// round-trip through the writer and parse again to an equivalent shape.
func FuzzParse(f *testing.F) {
	var seed bytes.Buffer
	_ = WriteReport(&seed, sampleReport())
	f.Add(seed.String())
	f.Add(`<GANGLIA_XML VERSION="1" SOURCE="s"></GANGLIA_XML>`)
	f.Add(`<GANGLIA_XML VERSION="1" SOURCE="s"><CLUSTER NAME="c" OWNER="" URL="" LOCALTIME="0"><HOST NAME="h" IP="" REPORTED="0"><METRIC NAME="m" VAL="1" TYPE="int32"/></HOST></CLUSTER></GANGLIA_XML>`)
	f.Add(`<?xml version="1.0"?><!DOCTYPE GANGLIA_XML [<!ELEMENT X (Y)>]><GANGLIA_XML VERSION="1" SOURCE="s"/>`)
	f.Add(`<GANGLIA_XML VERSION="&amp;&lt;&gt;&#65;" SOURCE="s"/>`)
	f.Add("<!-- -->")

	f.Fuzz(func(t *testing.T, doc string) {
		rep, err := Parse(strings.NewReader(doc))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteReport(&buf, rep); err != nil {
			t.Fatalf("accepted document failed to re-serialize: %v", err)
		}
		rep2, err := Parse(&buf)
		if err != nil {
			t.Fatalf("writer output unparseable: %v\ninput: %q", err, doc)
		}
		if rep2.Hosts() != rep.Hosts() {
			t.Fatalf("hosts changed across round trip: %d -> %d", rep.Hosts(), rep2.Hosts())
		}
		if len(rep2.Grids) != len(rep.Grids) || len(rep2.Clusters) != len(rep.Clusters) {
			t.Fatalf("tree shape changed across round trip")
		}
	})
}
