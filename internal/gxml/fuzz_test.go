package gxml

import (
	"bytes"
	"strings"
	"testing"

	"ganglia/internal/metric"
	"ganglia/internal/summary"
)

// FuzzParse hammers the hand-rolled streaming parser with arbitrary
// bytes: it must never panic, and any document it accepts must
// round-trip through the writer and parse again to an equivalent shape.
func FuzzParse(f *testing.F) {
	var seed bytes.Buffer
	_ = WriteReport(&seed, sampleReport())
	f.Add(seed.String())
	f.Add(`<GANGLIA_XML VERSION="1" SOURCE="s"></GANGLIA_XML>`)
	f.Add(`<GANGLIA_XML VERSION="1" SOURCE="s"><CLUSTER NAME="c" OWNER="" URL="" LOCALTIME="0"><HOST NAME="h" IP="" REPORTED="0"><METRIC NAME="m" VAL="1" TYPE="int32"/></HOST></CLUSTER></GANGLIA_XML>`)
	f.Add(`<?xml version="1.0"?><!DOCTYPE GANGLIA_XML [<!ELEMENT X (Y)>]><GANGLIA_XML VERSION="1" SOURCE="s"/>`)
	f.Add(`<GANGLIA_XML VERSION="&amp;&lt;&gt;&#65;" SOURCE="s"/>`)
	f.Add("<!-- -->")

	f.Fuzz(func(t *testing.T, doc string) {
		rep, err := Parse(strings.NewReader(doc))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteReport(&buf, rep); err != nil {
			t.Fatalf("accepted document failed to re-serialize: %v", err)
		}
		rep2, err := Parse(&buf)
		if err != nil {
			t.Fatalf("writer output unparseable: %v\ninput: %q", err, doc)
		}
		if rep2.Hosts() != rep.Hosts() {
			t.Fatalf("hosts changed across round trip: %d -> %d", rep.Hosts(), rep2.Hosts())
		}
		if len(rep2.Grids) != len(rep.Grids) || len(rep2.Clusters) != len(rep.Clusters) {
			t.Fatalf("tree shape changed across round trip")
		}
	})
}

// FuzzParseStreamChaos feeds ParseStream the failure shapes the fault
// network injects into polls — documents cut off mid-stream and
// documents with bit-flipped bytes. Whatever arrives, the streaming
// parser must return an error or a document, never panic, with every
// callback subscribed.
func FuzzParseStreamChaos(f *testing.F) {
	var seed bytes.Buffer
	_ = WriteReport(&seed, sampleReport())
	f.Add(seed.String(), uint16(0), uint8(0))
	f.Add(seed.String(), uint16(100), uint8(0)) // truncate mid-document
	f.Add(seed.String(), uint16(0), uint8(15))  // garble ~1/16 bytes
	f.Add(seed.String(), uint16(300), uint8(7)) // both
	f.Add(`<GANGLIA_XML VERSION="1" SOURCE="s"><GRID NAME="g" AUTHORITY="a" LOCALTIME="0"><SOURCE_HEALTH NAME="x" STATUS="down" ACTIVE="a:1" DOWN_SINCE="5" LAST_ERROR="e"/></GRID></GANGLIA_XML>`, uint16(120), uint8(11))

	subscribed := &Handler{
		StartReport:   func(string, string) {},
		EndReport:     func() {},
		StartGrid:     func(string, string, int64) {},
		EndGrid:       func() {},
		StartCluster:  func(string, string, string, int64) {},
		EndCluster:    func() {},
		StartHost:     func(Host) {},
		EndHost:       func() {},
		Metric:        func(metric.Metric) {},
		SummaryHosts:  func(uint32, uint32) {},
		SummaryMetric: func(summary.Metric) {},
		SourceHealth:  func(SourceHealth) {},
		StartHistory:  func(History) {},
		EndHistory:    func() {},
		HistoryPoint:  func(HistoryPoint) {},
	}

	f.Fuzz(func(t *testing.T, doc string, cut uint16, stride uint8) {
		b := []byte(doc)
		if int(cut) > 0 && int(cut) < len(b) {
			b = b[:cut] // a peer that closed the stream mid-document
		}
		if stride > 0 {
			// A link that flips roughly one bit per stride bytes,
			// deterministically so failures replay.
			b = bytes.Clone(b)
			for i := 0; i < len(b); i += int(stride) + 1 {
				b[i] ^= 1 << (uint(i) % 8)
			}
		}
		_ = ParseStream(bytes.NewReader(b), subscribed)
	})
}
