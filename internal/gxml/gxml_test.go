package gxml

import (
	"bytes"
	"encoding/xml"
	"io"
	"strings"
	"testing"
	"testing/quick"

	"ganglia/internal/metric"
	"ganglia/internal/summary"
)

// sampleReport builds a document shaped like the paper's fig 3: a grid
// holding one full-resolution cluster and one nested grid in summary
// form.
func sampleReport() *Report {
	attic := summary.New()
	attic.HostsUp, attic.HostsDown = 10, 1
	attic.AddReduced(summary.Metric{Name: "cpu_num", Sum: 20, Num: 10, Type: metric.TypeUint16})
	attic.AddReduced(summary.Metric{Name: "load_one", Sum: 17.56, Num: 10, Type: metric.TypeFloat})

	return &Report{
		Version: Version,
		Source:  "gmetad",
		Grids: []*Grid{{
			Name:      "SDSC",
			Authority: "http://sdsc.example/ganglia/",
			LocalTime: 1_057_000_123,
			Clusters: []*Cluster{{
				Name:      "Meteor",
				Owner:     "SDSC",
				URL:       "http://meteor.example/",
				LocalTime: 1_057_000_120,
				Hosts: []*Host{
					{
						Name: "compute-0-0", IP: "10.1.0.1", Reported: 1_057_000_115,
						TN: 5, TMAX: 20, DMAX: 0,
						Metrics: []metric.Metric{
							{Name: "cpu_num", Val: metric.NewUint(2), Units: "CPUs", Slope: metric.SlopeZero, TN: 3, TMAX: 1200, Source: "gmond"},
							{Name: "load_one", Val: metric.NewFloat(0.89), Slope: metric.SlopeBoth, TN: 7, TMAX: 70, Source: "gmond"},
							{Name: "os_name", Val: metric.NewString(`Linux <"&'> weird`), Slope: metric.SlopeZero, TMAX: 1200, Source: "gmond"},
						},
					},
					{
						Name: "compute-0-1", IP: "10.1.0.2", Reported: 1_057_000_110,
						TN: 10, TMAX: 20, DMAX: 0,
						Metrics: []metric.Metric{
							{Name: "cpu_num", Val: metric.NewUint(2), Units: "CPUs", Slope: metric.SlopeZero, TN: 2, TMAX: 1200, Source: "gmond"},
						},
					},
				},
			}},
			Grids: []*Grid{{
				Name:      "ATTIC",
				Authority: "http://attic.example/ganglia/",
				LocalTime: 1_057_000_100,
				Summary:   attic,
			}},
		}},
	}
}

func TestWriteParseRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteReport(&buf, sampleReport()); err != nil {
		t.Fatalf("write: %v", err)
	}
	got, err := Parse(&buf)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if got.Version != Version || got.Source != "gmetad" {
		t.Errorf("root attrs: %q %q", got.Version, got.Source)
	}
	if len(got.Grids) != 1 {
		t.Fatalf("grids = %d", len(got.Grids))
	}
	g := got.Grids[0]
	if g.Name != "SDSC" || g.Authority != "http://sdsc.example/ganglia/" || g.LocalTime != 1_057_000_123 {
		t.Errorf("grid attrs: %+v", g)
	}
	if len(g.Clusters) != 1 || len(g.Grids) != 1 {
		t.Fatalf("grid children: %d clusters, %d grids", len(g.Clusters), len(g.Grids))
	}
	c := g.Clusters[0]
	if c.Name != "Meteor" || len(c.Hosts) != 2 {
		t.Fatalf("cluster: %q with %d hosts", c.Name, len(c.Hosts))
	}
	h := c.Hosts[0]
	if h.Name != "compute-0-0" || h.IP != "10.1.0.1" || h.Reported != 1_057_000_115 || h.TN != 5 || h.TMAX != 20 {
		t.Errorf("host attrs: %+v", h)
	}
	if len(h.Metrics) != 3 {
		t.Fatalf("metrics = %d", len(h.Metrics))
	}
	m := h.Metrics[1]
	if m.Name != "load_one" {
		t.Errorf("metric name %q", m.Name)
	}
	if v, ok := m.Val.Float64(); !ok || v != 0.89 {
		t.Errorf("load_one val %v %v", v, ok)
	}
	if m.Slope != metric.SlopeBoth || m.TN != 7 || m.TMAX != 70 || m.Source != "gmond" {
		t.Errorf("metric attrs: %+v", m)
	}
	if esc := h.Metrics[2].Val.Text(); esc != `Linux <"&'> weird` {
		t.Errorf("escaped round trip: %q", esc)
	}

	att := g.Grids[0]
	if att.Name != "ATTIC" || att.Summary == nil {
		t.Fatalf("nested grid: %+v", att)
	}
	if att.Summary.HostsUp != 10 || att.Summary.HostsDown != 1 {
		t.Errorf("summary hosts: %d/%d", att.Summary.HostsUp, att.Summary.HostsDown)
	}
	sm := att.Summary.Metrics["load_one"]
	if sm == nil || sm.Sum != 17.56 || sm.Num != 10 {
		t.Errorf("summary metric: %+v", sm)
	}
}

// TestWriterOutputIsWellFormedXML cross-validates the hand-rolled
// writer against the standard library's XML parser.
func TestWriterOutputIsWellFormedXML(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteReport(&buf, sampleReport()); err != nil {
		t.Fatal(err)
	}
	dec := xml.NewDecoder(&buf)
	// The document declares ISO-8859-1 (as real gmetad does); our output
	// is pure ASCII, so a pass-through reader is correct.
	dec.CharsetReader = func(charset string, input io.Reader) (io.Reader, error) {
		return input, nil
	}
	elements := 0
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("stdlib parser rejected writer output: %v", err)
		}
		if _, ok := tok.(xml.StartElement); ok {
			elements++
		}
	}
	// GANGLIA_XML, GRID, CLUSTER, 2×HOST, 4×METRIC, GRID, HOSTS, 2×METRICS
	if elements != 13 {
		t.Errorf("element count = %d, want 13", elements)
	}
}

func TestParseGmondStyleReport(t *testing.T) {
	// A gmond report has CLUSTER at top level, no GRID.
	doc := `<?xml version="1.0" encoding="ISO-8859-1"?>
<!DOCTYPE GANGLIA_XML [ <!ELEMENT GANGLIA_XML (GRID|CLUSTER|HOST)*> ]>
<GANGLIA_XML VERSION="2.5.4" SOURCE="gmond">
<CLUSTER NAME="Meteor" OWNER="SDSC" URL="" LOCALTIME="100">
<HOST NAME="n0" IP="10.0.0.1" REPORTED="95" TN="5" TMAX="20" DMAX="0">
<METRIC NAME="load_one" VAL="1.25" TYPE="float" UNITS="" TN="2" TMAX="70" DMAX="0" SLOPE="both" SOURCE="gmond"/>
</HOST>
</CLUSTER>
</GANGLIA_XML>`
	rep, err := Parse(strings.NewReader(doc))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if len(rep.Clusters) != 1 || len(rep.Grids) != 0 {
		t.Fatalf("clusters=%d grids=%d", len(rep.Clusters), len(rep.Grids))
	}
	if rep.Clusters[0].Hosts[0].Metrics[0].Name != "load_one" {
		t.Error("metric not parsed")
	}
	if rep.Hosts() != 1 {
		t.Errorf("Hosts() = %d", rep.Hosts())
	}
}

func TestParseSkipsUnknownElements(t *testing.T) {
	doc := `<GANGLIA_XML VERSION="2.5.4" SOURCE="gmond">
<CLUSTER NAME="c" OWNER="" URL="" LOCALTIME="0">
<EXTRA_DATA><EXTRA_ELEMENT NAME="x" VAL="1"/><NESTED><DEEP/></NESTED></EXTRA_DATA>
<HOST NAME="n0" IP="" REPORTED="0" TN="0" TMAX="20" DMAX="0">
<FUTURE_TAG/>
<METRIC NAME="m" VAL="1" TYPE="int32" UNITS="" TN="0" TMAX="60" DMAX="0" SLOPE="both" SOURCE="gmond"/>
</HOST>
</CLUSTER>
</GANGLIA_XML>`
	rep, err := Parse(strings.NewReader(doc))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if len(rep.Clusters[0].Hosts) != 1 || len(rep.Clusters[0].Hosts[0].Metrics) != 1 {
		t.Errorf("unknown elements corrupted tree: %+v", rep.Clusters[0])
	}
}

func TestParseComments(t *testing.T) {
	doc := `<!-- a comment with > inside -->
<GANGLIA_XML VERSION="1" SOURCE="s">
<!-- another --><CLUSTER NAME="c" OWNER="" URL="" LOCALTIME="0"></CLUSTER>
</GANGLIA_XML>`
	if _, err := Parse(strings.NewReader(doc)); err != nil {
		t.Fatalf("parse: %v", err)
	}
}

func TestParseRejectsMisnesting(t *testing.T) {
	cases := []struct {
		name string
		doc  string
	}{
		{"metric outside host", `<GANGLIA_XML VERSION="1" SOURCE="s"><CLUSTER NAME="c" OWNER="" URL="" LOCALTIME="0"><METRIC NAME="m" VAL="1" TYPE="int32"/></CLUSTER></GANGLIA_XML>`},
		{"host outside cluster", `<GANGLIA_XML VERSION="1" SOURCE="s"><HOST NAME="h" IP="" REPORTED="0"></HOST></GANGLIA_XML>`},
		{"cluster inside host", `<GANGLIA_XML VERSION="1" SOURCE="s"><CLUSTER NAME="c" OWNER="" URL="" LOCALTIME="0"><HOST NAME="h" IP="" REPORTED="0"><CLUSTER NAME="x" OWNER="" URL="" LOCALTIME="0"/></HOST></CLUSTER></GANGLIA_XML>`},
		{"mismatched end tag", `<GANGLIA_XML VERSION="1" SOURCE="s"><CLUSTER NAME="c" OWNER="" URL="" LOCALTIME="0"></GRID></GANGLIA_XML>`},
		{"truncated", `<GANGLIA_XML VERSION="1" SOURCE="s"><CLUSTER NAME="c"`},
		{"empty", ``},
		{"double root content", `<GANGLIA_XML VERSION="1" SOURCE="s"><GANGLIA_XML VERSION="1" SOURCE="s"/></GANGLIA_XML>`},
	}
	for _, tc := range cases {
		if _, err := Parse(strings.NewReader(tc.doc)); err == nil {
			t.Errorf("%s: parse succeeded, want error", tc.name)
		}
	}
}

func TestParseEntities(t *testing.T) {
	doc := `<GANGLIA_XML VERSION="1" SOURCE="s">
<CLUSTER NAME="a&amp;b &lt;x&gt; &quot;q&quot; &apos;a&apos; &#65; &#x42;" OWNER="" URL="" LOCALTIME="0"></CLUSTER>
</GANGLIA_XML>`
	rep, err := Parse(strings.NewReader(doc))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	want := `a&b <x> "q" 'a' A B`
	if got := rep.Clusters[0].Name; got != want {
		t.Errorf("entities: %q, want %q", got, want)
	}
}

func TestParseBadEntity(t *testing.T) {
	doc := `<GANGLIA_XML VERSION="1" SOURCE="s"><CLUSTER NAME="&bogus;" OWNER="" URL="" LOCALTIME="0"/></GANGLIA_XML>`
	if _, err := Parse(strings.NewReader(doc)); err == nil {
		t.Error("unknown entity accepted")
	}
}

func TestHostUp(t *testing.T) {
	h := &Host{TN: 5, TMAX: 20}
	if !h.Up() {
		t.Error("fresh host reported down")
	}
	h.TN = 81
	if h.Up() {
		t.Error("stale host reported up")
	}
	h = &Host{TN: 1 << 30, TMAX: 0}
	if !h.Up() {
		t.Error("TMAX=0 host must always be up")
	}
}

func TestClusterSummarize(t *testing.T) {
	c := &Cluster{
		Name: "c",
		Hosts: []*Host{
			{Name: "up1", TN: 1, TMAX: 20, Metrics: []metric.Metric{
				{Name: "cpu_num", Val: metric.NewUint(2)},
				{Name: "os_name", Val: metric.NewString("Linux")},
			}},
			{Name: "up2", TN: 2, TMAX: 20, Metrics: []metric.Metric{
				{Name: "cpu_num", Val: metric.NewUint(4)},
			}},
			{Name: "down", TN: 500, TMAX: 20, Metrics: []metric.Metric{
				{Name: "cpu_num", Val: metric.NewUint(8)},
			}},
		},
	}
	s := c.Summarize()
	if s.HostsUp != 2 || s.HostsDown != 1 {
		t.Errorf("hosts %d/%d", s.HostsUp, s.HostsDown)
	}
	m := s.Metrics["cpu_num"]
	if m == nil || m.Sum != 6 || m.Num != 2 {
		t.Errorf("cpu_num = %+v (down host must not contribute)", m)
	}
	if _, ok := s.Metrics["os_name"]; ok {
		t.Error("string metric summarized")
	}
}

func TestGridSummarizeComposes(t *testing.T) {
	remote := summary.New()
	remote.HostsUp = 10
	remote.AddReduced(summary.Metric{Name: "cpu_num", Sum: 20, Num: 10})

	g := &Grid{
		Name: "root",
		Clusters: []*Cluster{{
			Hosts: []*Host{{Name: "h", TN: 0, TMAX: 20, Metrics: []metric.Metric{
				{Name: "cpu_num", Val: metric.NewUint(2)},
			}}},
		}},
		Grids: []*Grid{{Name: "remote", Summary: remote}},
	}
	s := g.Summarize()
	if s.HostsUp != 11 {
		t.Errorf("HostsUp = %d", s.HostsUp)
	}
	if m := s.Metrics["cpu_num"]; m.Sum != 22 || m.Num != 11 {
		t.Errorf("cpu_num = %+v", m)
	}
	// Summary-form grid returns a clone, not the original.
	sf := &Grid{Summary: remote}
	clone := sf.Summarize()
	clone.AddHost(true)
	if remote.HostsUp != 10 {
		t.Error("Summarize returned aliased summary")
	}
}

func TestWriteClusterSummaryForm(t *testing.T) {
	s := summary.New()
	s.HostsUp = 3
	s.AddReduced(summary.Metric{Name: "load_one", Sum: 4.5, Num: 3, Type: metric.TypeFloat})
	r := &Report{Source: "gmetad", Clusters: []*Cluster{{Name: "big", Summary: s}}}
	var buf bytes.Buffer
	if err := WriteReport(&buf, r); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `<HOSTS UP="3" DOWN="0"/>`) {
		t.Errorf("no HOSTS tag in cluster summary:\n%s", out)
	}
	if strings.Contains(out, "<HOST ") {
		t.Errorf("summary form leaked HOST tags:\n%s", out)
	}
	got, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Clusters[0].Summary == nil || got.Clusters[0].Summary.HostsUp != 3 {
		t.Errorf("cluster summary not parsed: %+v", got.Clusters[0])
	}
}

// Property: any report built from arbitrary names/values survives a
// write→parse round trip with names and values intact.
func TestQuickRoundTrip(t *testing.T) {
	f := func(cluster, host, mname string, val int32, tn uint16) bool {
		r := &Report{
			Source: "gmond",
			Clusters: []*Cluster{{
				Name: cluster,
				Hosts: []*Host{{
					Name: host, IP: "1.2.3.4", Reported: 99, TN: uint32(tn), TMAX: 20,
					Metrics: []metric.Metric{{
						Name: mname, Val: metric.NewInt(int64(val)),
						Slope: metric.SlopeBoth, TMAX: 60, Source: "gmond",
					}},
				}},
			}},
		}
		var buf bytes.Buffer
		if err := WriteReport(&buf, r); err != nil {
			return false
		}
		got, err := Parse(&buf)
		if err != nil {
			return false
		}
		c := got.Clusters[0]
		h := c.Hosts[0]
		m := h.Metrics[0]
		v, ok := m.Val.Float64()
		return c.Name == cluster && h.Name == host && h.TN == uint32(tn) &&
			m.Name == mname && ok && int32(v) == val
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: the parser never panics on arbitrary bytes.
func TestQuickParserRobust(t *testing.T) {
	f := func(data []byte) bool {
		_, _ = Parse(bytes.NewReader(data))
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// buildBigReport constructs a full-resolution cluster of n hosts with
// the standard ~30 metrics, the document shape the experiments parse.
func buildBigReport(n int) *Report {
	c := &Cluster{Name: "Meteor", LocalTime: 100}
	for i := 0; i < n; i++ {
		h := &Host{
			Name: "compute-" + itoa(i), IP: "10.0.0.1", Reported: 99,
			TN: 5, TMAX: 20,
		}
		for _, def := range metric.Standard {
			h.Metrics = append(h.Metrics, metric.Metric{
				Name: def.Name, Val: metric.NewFloat(1.5), Units: def.Units,
				Slope: def.Slope, TN: 3, TMAX: def.TMAX, Source: "gmond",
			})
		}
		c.Hosts = append(c.Hosts, h)
	}
	return &Report{Source: "gmond", Clusters: []*Cluster{c}}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b [8]byte
	p := len(b)
	for i > 0 {
		p--
		b[p] = byte('0' + i%10)
		i /= 10
	}
	return string(b[p:])
}

func TestBigReportRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteReport(&buf, buildBigReport(100)); err != nil {
		t.Fatal(err)
	}
	rep, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Hosts() != 100 {
		t.Errorf("hosts = %d", rep.Hosts())
	}
	if got := len(rep.Clusters[0].Hosts[50].Metrics); got != len(metric.Standard) {
		t.Errorf("metrics on host 50 = %d", got)
	}
}

func BenchmarkWrite100HostCluster(b *testing.B) {
	r := buildBigReport(100)
	var buf bytes.Buffer
	WriteReport(&buf, r)
	b.SetBytes(int64(buf.Len()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := WriteReport(&buf, r); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParse100HostCluster(b *testing.B) {
	var buf bytes.Buffer
	WriteReport(&buf, buildBigReport(100))
	doc := buf.Bytes()
	b.SetBytes(int64(len(doc)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(bytes.NewReader(doc)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParseStreamNoTree(b *testing.B) {
	var buf bytes.Buffer
	WriteReport(&buf, buildBigReport(100))
	doc := buf.Bytes()
	h := &Handler{Metric: func(m metric.Metric) {}}
	b.SetBytes(int64(len(doc)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ParseStream(bytes.NewReader(doc), h); err != nil {
			b.Fatal(err)
		}
	}
}

func TestSummaryStddevRoundTripsOverWire(t *testing.T) {
	s := summary.New()
	for _, v := range []float64{1, 2, 3, 4} {
		s.AddMetric(metric.Metric{Name: "load_one", Val: metric.NewDouble(v)})
		s.AddHost(true)
	}
	want := s.Metrics["load_one"].Stddev()
	if want == 0 {
		t.Fatal("precondition: zero stddev")
	}
	r := &Report{Source: "gmetad", Grids: []*Grid{{Name: "g", Summary: s}}}
	var buf bytes.Buffer
	if err := WriteReport(&buf, r); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "SUMSQ=") {
		t.Fatalf("SUMSQ not serialized:\n%s", buf.String())
	}
	got, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	gm := got.Grids[0].Summary.Metrics["load_one"]
	if diff := gm.Stddev() - want; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("stddev across the wire: %v, want %v", gm.Stddev(), want)
	}
}
