package gxml

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"

	"ganglia/internal/metric"
	"ganglia/internal/summary"
)

// Handler receives streaming parse events. Nil callbacks are skipped,
// so a consumer subscribes only to the events it needs — gmetad's
// collector, for instance, builds its hash tables directly from these
// callbacks without materializing a document tree.
type Handler struct {
	StartReport func(version, source string)
	EndReport   func()

	StartGrid func(name, authority string, localtime int64)
	EndGrid   func()

	StartCluster func(name, owner, url string, localtime int64)
	EndCluster   func()

	// StartHost receives the host attributes; its metrics follow as
	// Metric events before EndHost.
	StartHost func(h Host)
	EndHost   func()

	Metric func(m metric.Metric)

	// SummaryHosts and SummaryMetric deliver the summary form (HOSTS
	// and METRICS tags) of the enclosing grid or cluster.
	SummaryHosts  func(up, down uint32)
	SummaryMetric func(sm summary.Metric)

	// SourceHealth delivers the enclosing grid's per-source
	// degradation records (SOURCE_HEALTH tags).
	SourceHealth func(sh SourceHealth)

	// StartHistory receives a HISTORY element's attributes; its points
	// follow as HistoryPoint events before EndHistory.
	StartHistory func(h History)
	EndHistory   func()
	HistoryPoint func(p HistoryPoint)
}

// SyntaxError describes a malformed or mis-nested document.
type SyntaxError struct {
	Offset int64
	Msg    string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("gxml: offset %d: %s", e.Offset, e.Msg)
}

type attr struct {
	name  string
	value string
}

type parser struct {
	br   *bufio.Reader
	h    *Handler
	off  int64
	stk  []string
	skip int // depth inside an unknown element's subtree
	atts []attr
	// rootClosed records that a complete GANGLIA_XML element was seen
	// (including the self-closing form).
	rootClosed bool
}

func (p *parser) errf(format string, args ...any) error {
	return &SyntaxError{Offset: p.off, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) readByte() (byte, error) {
	c, err := p.br.ReadByte()
	if err == nil {
		p.off++
	}
	return c, err
}

// ParseStream reads one GANGLIA_XML document from r, invoking h's
// callbacks as elements are encountered. It validates nesting against
// the Ganglia DTD and fails on truncated or malformed input. Unknown
// elements (and their subtrees) are skipped for forward compatibility.
func ParseStream(r io.Reader, h *Handler) error {
	p := &parser{br: bufio.NewReaderSize(r, 32*1024), h: h}
	for {
		c, err := p.readByte()
		if err == io.EOF {
			if len(p.stk) != 0 {
				return p.errf("unexpected EOF inside <%s>", p.stk[len(p.stk)-1])
			}
			if !p.rootClosed {
				return p.errf("empty document")
			}
			return nil
		}
		if err != nil {
			return err
		}
		if c != '<' {
			// The Ganglia dialect has no element text; tolerate and
			// skip whatever appears between tags (whitespace in
			// practice).
			continue
		}
		c, err = p.readByte()
		if err != nil {
			return p.errf("truncated tag")
		}
		switch c {
		case '?':
			if err := p.skipUntil("?>"); err != nil {
				return err
			}
		case '!':
			if err := p.skipDeclaration(); err != nil {
				return err
			}
		case '/':
			name, err := p.readName('>')
			if err != nil {
				return err
			}
			if err := p.skipToGT(); err != nil {
				return err
			}
			if err := p.closeElement(name); err != nil {
				return err
			}
		default:
			if err := p.br.UnreadByte(); err != nil {
				return err
			}
			p.off--
			selfClosing, name, err := p.parseStartTag()
			if err != nil {
				return err
			}
			if err := p.openElement(name, selfClosing); err != nil {
				return err
			}
		}
	}
}

// skipUntil discards input through the first occurrence of the
// two-byte terminator t.
func (p *parser) skipUntil(t string) error {
	var prev byte
	for {
		c, err := p.readByte()
		if err != nil {
			return p.errf("truncated %q section", t)
		}
		if prev == t[0] && c == t[1] {
			return nil
		}
		prev = c
	}
}

// skipDeclaration discards a <!...> construct: a comment (which may
// contain '>') or a DOCTYPE possibly carrying an internal subset in
// square brackets.
func (p *parser) skipDeclaration() error {
	// Check for a comment: we have consumed "<!", the next two bytes
	// may be "--".
	b, err := p.br.Peek(2)
	if err == nil && b[0] == '-' && b[1] == '-' {
		p.br.Discard(2)
		p.off += 2
		var a, bb byte
		for {
			c, err := p.readByte()
			if err != nil {
				return p.errf("truncated comment")
			}
			if a == '-' && bb == '-' && c == '>' {
				return nil
			}
			a, bb = bb, c
		}
	}
	depth := 0
	for {
		c, err := p.readByte()
		if err != nil {
			return p.errf("truncated declaration")
		}
		switch c {
		case '[':
			depth++
		case ']':
			depth--
		case '>':
			if depth <= 0 {
				return nil
			}
		}
	}
}

func (p *parser) skipToGT() error {
	for {
		c, err := p.readByte()
		if err != nil {
			return p.errf("truncated end tag")
		}
		if c == '>' {
			return nil
		}
		if !isSpace(c) {
			return p.errf("unexpected %q in end tag", c)
		}
	}
}

func isSpace(c byte) bool { return c == ' ' || c == '\t' || c == '\n' || c == '\r' }

func isNameByte(c byte) bool {
	return c == '_' || c == '-' || c == '.' || c == ':' ||
		(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
}

// readName accumulates a tag or attribute name; stop is an additional
// terminator the caller will handle (the byte is unread).
func (p *parser) readName(stop byte) (string, error) {
	var sb strings.Builder
	for {
		c, err := p.readByte()
		if err != nil {
			return "", p.errf("truncated name")
		}
		if isNameByte(c) {
			sb.WriteByte(c)
			continue
		}
		if c == stop || isSpace(c) || c == '/' || c == '>' || c == '=' {
			if err := p.br.UnreadByte(); err != nil {
				return "", err
			}
			p.off--
			if sb.Len() == 0 {
				return "", p.errf("empty name")
			}
			return sb.String(), nil
		}
		return "", p.errf("invalid name byte %q", c)
	}
}

// parseStartTag parses "<NAME attr=.. ...>" or "<NAME .../>"; the '<'
// has been consumed.
func (p *parser) parseStartTag() (selfClosing bool, name string, err error) {
	name, err = p.readName('>')
	if err != nil {
		return false, "", err
	}
	p.atts = p.atts[:0]
	for {
		c, err := p.readByte()
		if err != nil {
			return false, "", p.errf("truncated tag <%s>", name)
		}
		switch {
		case isSpace(c):
			continue
		case c == '>':
			return false, name, nil
		case c == '/':
			c, err = p.readByte()
			if err != nil || c != '>' {
				return false, "", p.errf("expected '>' after '/' in <%s>", name)
			}
			return true, name, nil
		default:
			if err := p.br.UnreadByte(); err != nil {
				return false, "", err
			}
			p.off--
			aname, err := p.readName('=')
			if err != nil {
				return false, "", err
			}
			if err := p.expectByte('='); err != nil {
				return false, "", err
			}
			aval, err := p.readAttrValue()
			if err != nil {
				return false, "", err
			}
			p.atts = append(p.atts, attr{aname, aval})
		}
	}
}

func (p *parser) expectByte(want byte) error {
	for {
		c, err := p.readByte()
		if err != nil {
			return p.errf("truncated input, expected %q", want)
		}
		if c == want {
			return nil
		}
		if !isSpace(c) {
			return p.errf("expected %q, found %q", want, c)
		}
	}
}

func (p *parser) readAttrValue() (string, error) {
	var quote byte
	for {
		c, err := p.readByte()
		if err != nil {
			return "", p.errf("truncated attribute value")
		}
		if isSpace(c) {
			continue
		}
		if c == '"' || c == '\'' {
			quote = c
			break
		}
		return "", p.errf("attribute value must be quoted, found %q", c)
	}
	var sb strings.Builder
	for {
		c, err := p.readByte()
		if err != nil {
			return "", p.errf("truncated attribute value")
		}
		if c == quote {
			return sb.String(), nil
		}
		if c == '&' {
			r, err := p.readEntity()
			if err != nil {
				return "", err
			}
			sb.WriteRune(r)
			continue
		}
		sb.WriteByte(c)
	}
}

// readEntity decodes an entity reference after the '&'.
func (p *parser) readEntity() (rune, error) {
	var sb strings.Builder
	for {
		c, err := p.readByte()
		if err != nil {
			return 0, p.errf("truncated entity")
		}
		if c == ';' {
			break
		}
		if sb.Len() > 8 {
			return 0, p.errf("entity too long")
		}
		sb.WriteByte(c)
	}
	ent := sb.String()
	switch ent {
	case "amp":
		return '&', nil
	case "lt":
		return '<', nil
	case "gt":
		return '>', nil
	case "quot":
		return '"', nil
	case "apos":
		return '\'', nil
	}
	if strings.HasPrefix(ent, "#x") || strings.HasPrefix(ent, "#X") {
		n, err := strconv.ParseUint(ent[2:], 16, 32)
		if err != nil {
			return 0, p.errf("bad character reference &%s;", ent)
		}
		return rune(n), nil
	}
	if strings.HasPrefix(ent, "#") {
		n, err := strconv.ParseUint(ent[1:], 10, 32)
		if err != nil {
			return 0, p.errf("bad character reference &%s;", ent)
		}
		return rune(n), nil
	}
	return 0, p.errf("unknown entity &%s;", ent)
}

func (p *parser) findAttr(name string) string {
	for i := range p.atts {
		if p.atts[i].name == name {
			return p.atts[i].value
		}
	}
	return ""
}

func (p *parser) intAttr(name string) int64 {
	v, err := strconv.ParseInt(p.findAttr(name), 10, 64)
	if err != nil {
		return 0
	}
	return v
}

func (p *parser) floatAttr(name string) float64 {
	v, err := strconv.ParseFloat(p.findAttr(name), 64)
	if err != nil {
		return 0
	}
	return v
}

func (p *parser) parent() string {
	if len(p.stk) == 0 {
		return ""
	}
	return p.stk[len(p.stk)-1]
}

func (p *parser) openElement(name string, selfClosing bool) error {
	if p.skip > 0 {
		if !selfClosing {
			p.skip++
		}
		return nil
	}
	parent := p.parent()
	known := true
	switch name {
	case "GANGLIA_XML":
		if parent != "" {
			return p.errf("GANGLIA_XML must be the document root")
		}
		if p.h.StartReport != nil {
			p.h.StartReport(p.findAttr("VERSION"), p.findAttr("SOURCE"))
		}
	case "GRID":
		if parent != "GANGLIA_XML" && parent != "GRID" {
			return p.errf("GRID inside <%s>", parent)
		}
		if p.h.StartGrid != nil {
			p.h.StartGrid(p.findAttr("NAME"), p.findAttr("AUTHORITY"), p.intAttr("LOCALTIME"))
		}
	case "CLUSTER":
		if parent != "GANGLIA_XML" && parent != "GRID" {
			return p.errf("CLUSTER inside <%s>", parent)
		}
		if p.h.StartCluster != nil {
			p.h.StartCluster(p.findAttr("NAME"), p.findAttr("OWNER"),
				p.findAttr("URL"), p.intAttr("LOCALTIME"))
		}
	case "HOST":
		if parent != "CLUSTER" {
			return p.errf("HOST inside <%s>", parent)
		}
		if p.h.StartHost != nil {
			p.h.StartHost(Host{
				Name:     p.findAttr("NAME"),
				IP:       p.findAttr("IP"),
				Reported: p.intAttr("REPORTED"),
				TN:       uint32(p.intAttr("TN")),
				TMAX:     uint32(p.intAttr("TMAX")),
				DMAX:     uint32(p.intAttr("DMAX")),
			})
		}
	case "METRIC":
		if parent != "HOST" {
			return p.errf("METRIC inside <%s>", parent)
		}
		if p.h.Metric != nil {
			typ := metric.ParseType(p.findAttr("TYPE"))
			p.h.Metric(metric.Metric{
				Name:   p.findAttr("NAME"),
				Val:    metric.NewTyped(typ, p.findAttr("VAL")),
				Units:  p.findAttr("UNITS"),
				Slope:  metric.ParseSlope(p.findAttr("SLOPE")),
				TN:     uint32(p.intAttr("TN")),
				TMAX:   uint32(p.intAttr("TMAX")),
				DMAX:   uint32(p.intAttr("DMAX")),
				Source: p.findAttr("SOURCE"),
			})
		}
	case "HOSTS":
		if parent != "GRID" && parent != "CLUSTER" {
			return p.errf("HOSTS inside <%s>", parent)
		}
		if p.h.SummaryHosts != nil {
			p.h.SummaryHosts(uint32(p.intAttr("UP")), uint32(p.intAttr("DOWN")))
		}
	case "METRICS":
		if parent != "GRID" && parent != "CLUSTER" {
			return p.errf("METRICS inside <%s>", parent)
		}
		if p.h.SummaryMetric != nil {
			p.h.SummaryMetric(summary.Metric{
				Name:  p.findAttr("NAME"),
				Sum:   p.floatAttr("SUM"),
				SumSq: p.floatAttr("SUMSQ"),
				Num:   uint32(p.intAttr("NUM")),
				Type:  metric.ParseType(p.findAttr("TYPE")),
				Units: p.findAttr("UNITS"),
			})
		}
	case "SOURCE_HEALTH":
		if parent != "GRID" {
			return p.errf("SOURCE_HEALTH inside <%s>", parent)
		}
		if p.h.SourceHealth != nil {
			p.h.SourceHealth(SourceHealth{
				Name:       p.findAttr("NAME"),
				Status:     p.findAttr("STATUS"),
				ActiveAddr: p.findAttr("ACTIVE"),
				DownSince:  p.intAttr("DOWN_SINCE"),
				LastError:  p.findAttr("LAST_ERROR"),
			})
		}
	case "HISTORY":
		if parent != "GANGLIA_XML" {
			return p.errf("HISTORY inside <%s>", parent)
		}
		if p.h.StartHistory != nil {
			p.h.StartHistory(History{
				Cluster: p.findAttr("CLUSTER"),
				Host:    p.findAttr("HOST"),
				Metric:  p.findAttr("METRIC"),
				CF:      p.findAttr("CF"),
				Step:    p.intAttr("STEP"),
			})
		}
	case "POINT":
		if parent != "HISTORY" {
			return p.errf("POINT inside <%s>", parent)
		}
		if p.h.HistoryPoint != nil {
			p.h.HistoryPoint(HistoryPoint{
				Time:  p.intAttr("T"),
				Value: parseHistoryValue(p.findAttr("V")),
			})
		}
	default:
		known = false
	}
	if !known {
		if !selfClosing {
			p.skip = 1
		}
		return nil
	}
	if selfClosing {
		return p.dispatchEnd(name)
	}
	p.stk = append(p.stk, name)
	return nil
}

func (p *parser) closeElement(name string) error {
	if p.skip > 0 {
		p.skip--
		return nil
	}
	if len(p.stk) == 0 {
		return p.errf("unmatched </%s>", name)
	}
	top := p.stk[len(p.stk)-1]
	if top != name {
		return p.errf("</%s> closes <%s>", name, top)
	}
	p.stk = p.stk[:len(p.stk)-1]
	return p.dispatchEnd(name)
}

func (p *parser) dispatchEnd(name string) error {
	switch name {
	case "GANGLIA_XML":
		p.rootClosed = true
		if p.h.EndReport != nil {
			p.h.EndReport()
		}
	case "GRID":
		if p.h.EndGrid != nil {
			p.h.EndGrid()
		}
	case "CLUSTER":
		if p.h.EndCluster != nil {
			p.h.EndCluster()
		}
	case "HOST":
		if p.h.EndHost != nil {
			p.h.EndHost()
		}
	case "HISTORY":
		if p.h.EndHistory != nil {
			p.h.EndHistory()
		}
	}
	return nil
}

// ErrNoDocument is returned by Parse when the input holds no
// GANGLIA_XML document.
var ErrNoDocument = errors.New("gxml: no GANGLIA_XML document")

// Parse reads a complete document into a Report tree.
func Parse(r io.Reader) (*Report, error) {
	var (
		rep     *Report
		gridStk []*Grid
		curClu  *Cluster
		curHost *Host
		curHist *History
		curSumm *summary.Summary // summary under construction for innermost grid/cluster
		summFor any              // the *Grid or *Cluster curSumm belongs to
	)
	attach := func(s *summary.Summary, owner any) {
		switch o := owner.(type) {
		case *Grid:
			o.Summary = s
		case *Cluster:
			o.Summary = s
		}
	}
	h := &Handler{
		StartReport: func(version, source string) {
			rep = &Report{Version: version, Source: source}
		},
		StartGrid: func(name, authority string, lt int64) {
			g := &Grid{Name: name, Authority: authority, LocalTime: lt}
			if len(gridStk) > 0 {
				parent := gridStk[len(gridStk)-1]
				parent.Grids = append(parent.Grids, g)
			} else {
				rep.Grids = append(rep.Grids, g)
			}
			gridStk = append(gridStk, g)
			curSumm, summFor = nil, nil
		},
		EndGrid: func() {
			g := gridStk[len(gridStk)-1]
			if curSumm != nil && summFor == any(g) {
				attach(curSumm, g)
				curSumm, summFor = nil, nil
			}
			gridStk = gridStk[:len(gridStk)-1]
		},
		StartCluster: func(name, owner, url string, lt int64) {
			curClu = &Cluster{Name: name, Owner: owner, URL: url, LocalTime: lt}
			if len(gridStk) > 0 {
				g := gridStk[len(gridStk)-1]
				g.Clusters = append(g.Clusters, curClu)
			} else {
				rep.Clusters = append(rep.Clusters, curClu)
			}
			curSumm, summFor = nil, nil
		},
		EndCluster: func() {
			if curSumm != nil && summFor == any(curClu) {
				attach(curSumm, curClu)
				curSumm, summFor = nil, nil
			}
			curClu = nil
		},
		StartHost: func(hh Host) {
			h := hh
			curHost = &h
			curClu.Hosts = append(curClu.Hosts, curHost)
		},
		EndHost: func() { curHost = nil },
		Metric: func(m metric.Metric) {
			curHost.Metrics = append(curHost.Metrics, m)
		},
		SummaryHosts: func(up, down uint32) {
			s, owner := ensureSummary(curClu, gridStk, curSumm, summFor)
			s.HostsUp, s.HostsDown = up, down
			curSumm, summFor = s, owner
		},
		SummaryMetric: func(sm summary.Metric) {
			s, owner := ensureSummary(curClu, gridStk, curSumm, summFor)
			s.AddReduced(sm)
			curSumm, summFor = s, owner
		},
		SourceHealth: func(sh SourceHealth) {
			if len(gridStk) > 0 {
				g := gridStk[len(gridStk)-1]
				shh := sh
				g.Health = append(g.Health, &shh)
			}
		},
		StartHistory: func(h History) {
			hh := h
			curHist = &hh
			rep.Histories = append(rep.Histories, curHist)
		},
		EndHistory: func() { curHist = nil },
		HistoryPoint: func(p HistoryPoint) {
			curHist.Points = append(curHist.Points, p)
		},
	}
	if err := ParseStream(r, h); err != nil {
		return nil, err
	}
	if rep == nil {
		return nil, ErrNoDocument
	}
	return rep, nil
}

// ensureSummary locates (or creates) the summary being built for the
// innermost open cluster or grid.
func ensureSummary(curClu *Cluster, gridStk []*Grid, cur *summary.Summary, owner any) (*summary.Summary, any) {
	var want any
	if curClu != nil {
		want = curClu
	} else if len(gridStk) > 0 {
		want = gridStk[len(gridStk)-1]
	}
	if cur != nil && owner == want {
		return cur, owner
	}
	return summary.New(), want
}
