package gxml

import (
	"math"
	"strconv"
)

// History is a HISTORY element: one archived metric series, served in
// response to a history query. The paper's archives "support a wide
// range of time scale queries" (§2.1); this element is how a series
// travels to a viewer.
type History struct {
	Cluster string
	Host    string // SummaryHost for cluster/grid summary series
	Metric  string
	// CF names the consolidation function (AVERAGE, MAX, ...).
	CF string
	// Step is the consolidation period in seconds.
	Step int64

	Points []HistoryPoint
}

// HistoryPoint is one POINT element: a timestamped consolidated value.
// NaN marks an unknown slot (the source was silent past its heartbeat).
type HistoryPoint struct {
	Time  int64 // Unix seconds
	Value float64
}

// Unknown reports whether the point holds no value.
func (p HistoryPoint) Unknown() bool { return math.IsNaN(p.Value) }

// HistoryElem emits a HISTORY element with its points.
func (w *Writer) HistoryElem(h *History) {
	w.OpenHistory(h.Cluster, h.Host, h.Metric, h.CF, h.Step)
	for _, p := range h.Points {
		w.PointElem(p.Time, p.Value)
	}
	w.CloseHistory()
}

// OpenHistory emits a HISTORY element's open tag — the streaming form
// for answers serialized straight from the archive store, point by
// point, without materializing a History tree. Balance with
// CloseHistory.
func (w *Writer) OpenHistory(cluster, host, metric, cf string, step int64) {
	w.str("<HISTORY")
	w.attr("CLUSTER", cluster)
	w.attr("HOST", host)
	w.attr("METRIC", metric)
	w.attr("CF", cf)
	w.attrInt("STEP", step)
	w.str(">\n")
}

// PointElem emits one POINT element; a NaN value is spelled "NaN"
// (an unknown slot).
func (w *Writer) PointElem(t int64, v float64) {
	w.str("<POINT")
	w.attrInt("T", t)
	if math.IsNaN(v) {
		w.attr("V", "NaN")
	} else {
		w.attrFloat("V", v)
	}
	w.str("/>\n")
}

// CloseHistory emits a HISTORY element's close tag.
func (w *Writer) CloseHistory() { w.str("</HISTORY>\n") }

// parseHistoryValue decodes a POINT's V attribute; unparseable text
// degrades to NaN (unknown) rather than an error.
func parseHistoryValue(s string) float64 {
	if s == "NaN" {
		return math.NaN()
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return math.NaN()
	}
	return v
}
