package gxml

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestHistoryRoundTrip(t *testing.T) {
	r := &Report{
		Source: "gmetad",
		Histories: []*History{{
			Cluster: "meteor",
			Host:    "compute-0-0",
			Metric:  "load_one",
			CF:      "AVERAGE",
			Step:    15,
			Points: []HistoryPoint{
				{Time: 1_057_000_015, Value: 0.5},
				{Time: 1_057_000_030, Value: math.NaN()},
				{Time: 1_057_000_045, Value: 2.25},
			},
		}},
	}
	var buf bytes.Buffer
	if err := WriteReport(&buf, r); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `V="NaN"`) {
		t.Errorf("unknown point not serialized as NaN:\n%s", buf.String())
	}
	got, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Histories) != 1 {
		t.Fatalf("histories = %d", len(got.Histories))
	}
	h := got.Histories[0]
	if h.Cluster != "meteor" || h.Host != "compute-0-0" || h.Metric != "load_one" ||
		h.CF != "AVERAGE" || h.Step != 15 {
		t.Errorf("attrs: %+v", h)
	}
	if len(h.Points) != 3 {
		t.Fatalf("points = %d", len(h.Points))
	}
	if h.Points[0].Value != 0.5 || h.Points[2].Value != 2.25 {
		t.Errorf("values: %+v", h.Points)
	}
	if !h.Points[1].Unknown() {
		t.Error("NaN point not unknown after round trip")
	}
}

// The streaming primitives must produce byte-identical documents to the
// DOM path: gmetad's history equivalence oracle depends on it.
func TestHistoryStreamingMatchesDOM(t *testing.T) {
	hs := []*History{
		{Cluster: "meteor", Host: "compute-0-0", Metric: "load_one", CF: "AVERAGE", Step: 15,
			Points: []HistoryPoint{
				{Time: 1_057_000_015, Value: 0.5},
				{Time: 1_057_000_030, Value: math.NaN()},
				{Time: 1_057_000_045, Value: 2.25},
			}},
		{Cluster: "meteor", Host: "__summary__", Metric: "load_one", CF: "MAX", Step: 60},
	}
	var dom bytes.Buffer
	if err := WriteReport(&dom, &Report{Source: "gmetad", Histories: hs}); err != nil {
		t.Fatal(err)
	}

	var stream bytes.Buffer
	w := NewWriter(&stream)
	w.OpenDoc("", "gmetad")
	for _, h := range hs {
		w.OpenHistory(h.Cluster, h.Host, h.Metric, h.CF, h.Step)
		for _, p := range h.Points {
			w.PointElem(p.Time, p.Value)
		}
		w.CloseHistory()
	}
	w.CloseDoc()
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dom.Bytes(), stream.Bytes()) {
		t.Errorf("streaming differs from DOM:\n--- dom ---\n%s--- stream ---\n%s", dom.Bytes(), stream.Bytes())
	}
}

func TestHistoryNestingRules(t *testing.T) {
	bad := []string{
		// POINT outside HISTORY.
		`<GANGLIA_XML VERSION="1" SOURCE="s"><POINT T="1" V="2"/></GANGLIA_XML>`,
		// HISTORY inside CLUSTER.
		`<GANGLIA_XML VERSION="1" SOURCE="s"><CLUSTER NAME="c" OWNER="" URL="" LOCALTIME="0"><HISTORY CLUSTER="c" HOST="h" METRIC="m" CF="AVERAGE" STEP="15"></HISTORY></CLUSTER></GANGLIA_XML>`,
	}
	for i, doc := range bad {
		if _, err := Parse(strings.NewReader(doc)); err == nil {
			t.Errorf("case %d parsed", i)
		}
	}
}

func TestHistoryBadValueDegradesToUnknown(t *testing.T) {
	doc := `<GANGLIA_XML VERSION="1" SOURCE="s">
<HISTORY CLUSTER="c" HOST="h" METRIC="m" CF="AVERAGE" STEP="15">
<POINT T="10" V="not-a-number"/>
</HISTORY>
</GANGLIA_XML>`
	rep, err := Parse(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Histories[0].Points[0].Unknown() {
		t.Error("garbage value did not degrade to unknown")
	}
}
