package metric

import (
	"testing"
)

// FuzzDecodeAnnouncement throws arbitrary packets at the wire decoder:
// no panic, and anything it accepts must re-encode and decode to the
// same announcement.
func FuzzDecodeAnnouncement(f *testing.F) {
	good := Announcement{
		Host: "compute-0-0", IP: "10.0.0.1",
		Metric: Metric{Name: "load_one", Val: NewFloat(0.89), Units: "", Slope: SlopeBoth, TMAX: 70},
	}
	f.Add(good.Encode())
	f.Add([]byte{})
	f.Add([]byte("garbage"))
	pkt := good.Encode()
	f.Add(pkt[:len(pkt)-3])

	f.Fuzz(func(t *testing.T, data []byte) {
		a, err := DecodeAnnouncement(data)
		if err != nil {
			return
		}
		// One re-encode may canonicalize the value's text form (float
		// formatting); after that the representation must be a fixed
		// point.
		b, err := DecodeAnnouncement(a.Encode())
		if err != nil {
			t.Fatalf("re-encoded announcement undecodable: %v", err)
		}
		if b.Host != a.Host || b.IP != a.IP || b.Metric.Name != a.Metric.Name ||
			b.Metric.TMAX != a.Metric.TMAX || b.Metric.DMAX != a.Metric.DMAX {
			t.Fatalf("announcement identity changed:\n%+v\n%+v", a, b)
		}
		c, err := DecodeAnnouncement(b.Encode())
		if err != nil {
			t.Fatalf("canonical announcement undecodable: %v", err)
		}
		if c.Metric.Val.Text() != b.Metric.Val.Text() ||
			c.Metric.Val.Type() != b.Metric.Val.Type() {
			t.Fatalf("canonical form not a fixed point: %q/%v -> %q/%v",
				b.Metric.Val.Text(), b.Metric.Val.Type(),
				c.Metric.Val.Text(), c.Metric.Val.Type())
		}
	})
}
