package metric

import (
	"math"
	"strconv"
	"testing"
	"testing/quick"
)

func TestTypeStringRoundTrip(t *testing.T) {
	for ty := TypeString; ty <= TypeTimestamp; ty++ {
		if got := ParseType(ty.String()); got != ty {
			t.Errorf("ParseType(%q) = %v, want %v", ty.String(), got, ty)
		}
	}
}

func TestParseTypeUnknown(t *testing.T) {
	if got := ParseType("quaternion"); got != TypeString {
		t.Errorf("unknown type parsed to %v, want TypeString", got)
	}
}

func TestTypeNumeric(t *testing.T) {
	cases := map[Type]bool{
		TypeString:    false,
		TypeTimestamp: false,
		TypeInt8:      true,
		TypeUint8:     true,
		TypeInt16:     true,
		TypeUint16:    true,
		TypeInt32:     true,
		TypeUint32:    true,
		TypeFloat:     true,
		TypeDouble:    true,
	}
	for ty, want := range cases {
		if got := ty.Numeric(); got != want {
			t.Errorf("%v.Numeric() = %v, want %v", ty, got, want)
		}
	}
}

func TestSlopeStringRoundTrip(t *testing.T) {
	for s := SlopeZero; s <= SlopeUnspecified; s++ {
		if got := ParseSlope(s.String()); got != s {
			t.Errorf("ParseSlope(%q) = %v, want %v", s.String(), got, s)
		}
	}
	if got := ParseSlope("sideways"); got != SlopeUnspecified {
		t.Errorf("unknown slope parsed to %v", got)
	}
}

func TestValueConstructors(t *testing.T) {
	v := NewFloat(0.894)
	if f, ok := v.Float64(); !ok || f != 0.894 {
		t.Errorf("NewFloat: %v %v", f, ok)
	}
	if v.Text() != "0.89" {
		t.Errorf("float Text = %q, want 0.89", v.Text())
	}
	if v.Type() != TypeFloat {
		t.Errorf("float Type = %v", v.Type())
	}

	v = NewInt(-3)
	if v.Text() != "-3" || v.Type() != TypeInt32 {
		t.Errorf("NewInt: %q %v", v.Text(), v.Type())
	}

	v = NewUint(12)
	if v.Text() != "12" || v.Type() != TypeUint32 {
		t.Errorf("NewUint: %q %v", v.Text(), v.Type())
	}

	v = NewString("Linux")
	if v.Text() != "Linux" {
		t.Errorf("NewString Text = %q", v.Text())
	}
	if _, ok := v.Float64(); ok {
		t.Error("string value reported as numeric")
	}

	v = NewTimestamp(1057000000)
	if v.Text() != "1057000000" || v.Type() != TypeTimestamp {
		t.Errorf("NewTimestamp: %q %v", v.Text(), v.Type())
	}
}

func TestNewTypedNumericParsing(t *testing.T) {
	v := NewTyped(TypeFloat, "2.50")
	if f, ok := v.Float64(); !ok || f != 2.5 {
		t.Errorf("parsed %v %v", f, ok)
	}
	// Malformed numeric text degrades to zero, not an error: one bad
	// peer value must not take down the monitor.
	v = NewTyped(TypeUint32, "not-a-number")
	if f, ok := v.Float64(); !ok || f != 0 {
		t.Errorf("malformed numeric: %v %v", f, ok)
	}
	v = NewTyped(TypeString, "anything at all")
	if v.Text() != "anything at all" {
		t.Errorf("string passthrough: %q", v.Text())
	}
}

func TestHeartbeat(t *testing.T) {
	hb := Heartbeat(12345, 20)
	if hb.Name != HeartbeatName {
		t.Errorf("name = %q", hb.Name)
	}
	if hb.Val.Text() != "12345" {
		t.Errorf("value = %q", hb.Val.Text())
	}
	if hb.TMAX != 20 {
		t.Errorf("tmax = %d", hb.TMAX)
	}
}

func TestStaleAndExpired(t *testing.T) {
	m := Metric{TMAX: 20, DMAX: 86400}
	m.TN = 0
	if m.Stale() || m.Expired() {
		t.Error("fresh metric reported stale/expired")
	}
	m.TN = 81 // > 4*TMAX
	if !m.Stale() {
		t.Error("TN=81 TMAX=20 should be stale")
	}
	if m.Expired() {
		t.Error("TN=81 should not be expired with DMAX=86400")
	}
	m.TN = 90000
	if !m.Expired() {
		t.Error("TN>DMAX should be expired")
	}
	// DMAX=0 means never expire.
	m = Metric{TMAX: 20, DMAX: 0, TN: 1 << 30}
	if m.Expired() {
		t.Error("DMAX=0 must never expire")
	}
	// TMAX=0 means never stale (e.g. constant metrics).
	m = Metric{TMAX: 0, TN: 1 << 30}
	if m.Stale() {
		t.Error("TMAX=0 must never go stale")
	}
}

func TestStandardTable(t *testing.T) {
	if len(Standard) < 30 {
		t.Fatalf("standard table has %d metrics, want ~30+ (paper: 'about 30')", len(Standard))
	}
	seen := map[string]bool{}
	for _, d := range Standard {
		if d.Name == "" {
			t.Error("empty metric name in table")
		}
		if seen[d.Name] {
			t.Errorf("duplicate metric %q", d.Name)
		}
		seen[d.Name] = true
		if d.TMAX == 0 {
			t.Errorf("%s: zero TMAX", d.Name)
		}
		if d.CollectEvery == 0 {
			t.Errorf("%s: zero CollectEvery", d.Name)
		}
		if d.CollectEvery > d.TMAX {
			t.Errorf("%s: collects every %ds but TMAX is %ds", d.Name, d.CollectEvery, d.TMAX)
		}
	}
	for _, name := range []string{"load_one", "cpu_num", "mem_total", "bytes_in", "os_name"} {
		if !seen[name] {
			t.Errorf("standard table missing %q", name)
		}
	}
}

func TestLookup(t *testing.T) {
	d := Lookup("load_one")
	if d == nil {
		t.Fatal("load_one not found")
	}
	if d.Type != TypeFloat {
		t.Errorf("load_one type = %v", d.Type)
	}
	if Lookup("no_such_metric") != nil {
		t.Error("Lookup invented a metric")
	}
}

func TestNumericStandard(t *testing.T) {
	names := NumericStandard()
	for _, n := range names {
		d := Lookup(n)
		if d == nil || !d.Type.Numeric() {
			t.Errorf("NumericStandard returned non-numeric %q", n)
		}
	}
	// os_name is a string metric and must be absent.
	for _, n := range names {
		if n == "os_name" {
			t.Error("os_name in NumericStandard")
		}
	}
	if len(names) >= len(Standard) {
		t.Error("every metric numeric? string metrics missing from table")
	}
}

func TestAnnouncementRoundTrip(t *testing.T) {
	a := Announcement{
		Host: "compute-0-0",
		IP:   "10.1.0.5",
		Metric: Metric{
			Name:  "load_one",
			Val:   NewFloat(0.89),
			Units: "",
			Slope: SlopeBoth,
			TMAX:  70,
			DMAX:  0,
		},
	}
	pkt := a.Encode()
	got, err := DecodeAnnouncement(pkt)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.Host != a.Host || got.IP != a.IP {
		t.Errorf("host/ip = %q/%q", got.Host, got.IP)
	}
	if got.Metric.Name != "load_one" {
		t.Errorf("name = %q", got.Metric.Name)
	}
	if f, ok := got.Metric.Val.Float64(); !ok || f != 0.89 {
		t.Errorf("value = %v %v", f, ok)
	}
	if got.Metric.Slope != SlopeBoth || got.Metric.TMAX != 70 {
		t.Errorf("slope/tmax = %v/%d", got.Metric.Slope, got.Metric.TMAX)
	}
	if got.Metric.Source != "gmond" {
		t.Errorf("source = %q", got.Metric.Source)
	}
}

func TestAnnouncementRejectsGarbage(t *testing.T) {
	if _, err := DecodeAnnouncement([]byte("hello world, not xdr")); err == nil {
		t.Error("garbage decoded without error")
	}
	if _, err := DecodeAnnouncement(nil); err == nil {
		t.Error("empty packet decoded without error")
	}
	// Valid magic, truncated body.
	a := Announcement{Host: "h", Metric: Metric{Name: "m", Val: NewInt(1)}}
	pkt := a.Encode()
	if _, err := DecodeAnnouncement(pkt[:12]); err == nil {
		t.Error("truncated packet decoded without error")
	}
}

func TestAnnouncementWrongVersion(t *testing.T) {
	a := Announcement{Host: "h", Metric: Metric{Name: "m", Val: NewInt(1)}}
	pkt := a.Encode()
	pkt[7] = 99 // corrupt the version word
	if _, err := DecodeAnnouncement(pkt); err == nil {
		t.Error("wrong version accepted")
	}
}

// Property: announcements round-trip for arbitrary host/name strings and
// integer values.
func TestQuickAnnouncementRoundTrip(t *testing.T) {
	f := func(host, name string, val int32, tmax, dmax uint32) bool {
		a := Announcement{
			Host: host,
			Metric: Metric{
				Name: name,
				Val:  NewInt(int64(val)),
				TMAX: tmax,
				DMAX: dmax,
			},
		}
		got, err := DecodeAnnouncement(a.Encode())
		if err != nil {
			return false
		}
		gv, ok := got.Metric.Val.Float64()
		return got.Host == host && got.Metric.Name == name && ok &&
			int32(gv) == val && got.Metric.TMAX == tmax && got.Metric.DMAX == dmax
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Value.Text for numeric types always re-parses to the same
// number (within float formatting precision).
func TestQuickValueTextParses(t *testing.T) {
	f := func(v int64) bool {
		val := NewInt(v % (1 << 52)) // stay in float64-exact range
		parsed, err := strconv.ParseFloat(val.Text(), 64)
		if err != nil {
			return false
		}
		f0, _ := val.Float64()
		return parsed == math.Trunc(f0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkAnnouncementEncode(b *testing.B) {
	a := Announcement{
		Host:   "compute-0-0",
		IP:     "10.1.0.5",
		Metric: Metric{Name: "load_one", Val: NewFloat(0.89), Slope: SlopeBoth, TMAX: 70},
	}
	buf := make([]byte, 0, 128)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = a.AppendEncode(buf[:0])
	}
}

func BenchmarkAnnouncementDecode(b *testing.B) {
	a := Announcement{
		Host:   "compute-0-0",
		Metric: Metric{Name: "load_one", Val: NewFloat(0.89), TMAX: 70},
	}
	pkt := a.Encode()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeAnnouncement(pkt); err != nil {
			b.Fatal(err)
		}
	}
}
