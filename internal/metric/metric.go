// Package metric defines the Ganglia metric model shared by every layer
// of the monitoring stack.
//
// A metric is a typed, named measurement originating at a single host:
// "load_one = 0.89 (float)". Gmond multicasts metrics inside a cluster,
// gmetad aggregates them across clusters, and the XML language carries
// them over the wide area. The wide-area system deliberately concerns
// itself only with a metric's type and context — which host, and in
// which cluster it originated (paper §1) — so this package carries no
// collection logic; see package oscollect for that.
//
// Every metric also carries the soft-state lifetimes the paper's
// leaderless gmon protocol depends on: TN (seconds since the value was
// last updated), TMAX (the expected interval between updates, used to
// declare a source stale) and DMAX (the interval after which a silent
// metric is deleted outright).
package metric

import (
	"fmt"
	"strconv"
)

// Type enumerates the value types of the Ganglia data model, matching
// the TYPE attribute of the METRIC tag in the XML language.
type Type uint8

// The Ganglia metric types. All numeric types participate in additive
// summaries; String and Timestamp metrics are visible only in
// full-resolution cluster views (paper §2.2: "only numeric metrics can
// be reliably summarized").
const (
	TypeString Type = iota
	TypeInt8
	TypeUint8
	TypeInt16
	TypeUint16
	TypeInt32
	TypeUint32
	TypeFloat
	TypeDouble
	TypeTimestamp
)

var typeNames = [...]string{
	TypeString:    "string",
	TypeInt8:      "int8",
	TypeUint8:     "uint8",
	TypeInt16:     "int16",
	TypeUint16:    "uint16",
	TypeInt32:     "int32",
	TypeUint32:    "uint32",
	TypeFloat:     "float",
	TypeDouble:    "double",
	TypeTimestamp: "timestamp",
}

// String returns the XML TYPE attribute spelling of t.
func (t Type) String() string {
	if int(t) < len(typeNames) {
		return typeNames[t]
	}
	return fmt.Sprintf("type(%d)", uint8(t))
}

// ParseType maps a TYPE attribute back to a Type. Unknown spellings
// return TypeString, the least-capable type, so that a report from a
// newer peer still parses.
func ParseType(s string) Type {
	for i, n := range typeNames {
		if n == s {
			return Type(i)
		}
	}
	return TypeString
}

// Numeric reports whether values of this type participate in additive
// summaries.
func (t Type) Numeric() bool {
	switch t {
	case TypeString, TypeTimestamp:
		return false
	default:
		return true
	}
}

// Slope describes how a metric's value changes over time, matching the
// SLOPE attribute. Archiving uses it to pick a consolidation function
// (a "zero"-slope metric such as cpu_num rarely changes; a "positive"
// metric such as bytes_in is a monotonic counter).
type Slope uint8

// Slope values as defined by the Ganglia DTD.
const (
	SlopeZero Slope = iota
	SlopePositive
	SlopeNegative
	SlopeBoth
	SlopeUnspecified
)

var slopeNames = [...]string{
	SlopeZero:        "zero",
	SlopePositive:    "positive",
	SlopeNegative:    "negative",
	SlopeBoth:        "both",
	SlopeUnspecified: "unspecified",
}

// String returns the XML SLOPE attribute spelling of s.
func (s Slope) String() string {
	if int(s) < len(slopeNames) {
		return slopeNames[s]
	}
	return fmt.Sprintf("slope(%d)", uint8(s))
}

// ParseSlope maps a SLOPE attribute back to a Slope; unknown spellings
// return SlopeUnspecified.
func ParseSlope(v string) Slope {
	for i, n := range slopeNames {
		if n == v {
			return Slope(i)
		}
	}
	return SlopeUnspecified
}

// Value is a typed metric value. The zero Value is an empty string.
//
// Ganglia transmits every value as formatted text (the VAL attribute)
// tagged with its type; Value keeps both the numeric form — needed for
// summaries and archives — and produces the canonical text form on
// demand.
type Value struct {
	typ Type
	num float64 // valid when typ.Numeric()
	str string  // valid when !typ.Numeric()
}

// NewFloat returns a float-typed Value (single precision on the wire).
func NewFloat(v float64) Value { return Value{typ: TypeFloat, num: v} }

// NewDouble returns a double-typed Value.
func NewDouble(v float64) Value { return Value{typ: TypeDouble, num: v} }

// NewInt returns an int32-typed Value.
func NewInt(v int64) Value { return Value{typ: TypeInt32, num: float64(v)} }

// NewUint returns a uint32-typed Value.
func NewUint(v uint64) Value { return Value{typ: TypeUint32, num: float64(v)} }

// NewString returns a string-typed Value.
func NewString(v string) Value { return Value{typ: TypeString, str: v} }

// NewTimestamp returns a timestamp-typed Value holding Unix seconds.
func NewTimestamp(sec int64) Value {
	return Value{typ: TypeTimestamp, str: strconv.FormatInt(sec, 10)}
}

// NewTyped builds a Value of an explicit type from its text form, as
// found in a METRIC tag. Numeric text that fails to parse yields a
// zero-valued numeric Value rather than an error: a wide-area monitor
// must keep running when one peer emits one malformed value.
func NewTyped(t Type, text string) Value {
	if !t.Numeric() {
		return Value{typ: t, str: text}
	}
	f, err := strconv.ParseFloat(text, 64)
	if err != nil {
		f = 0
	}
	return Value{typ: t, num: f}
}

// Type returns the value's type.
func (v Value) Type() Type { return v.typ }

// Float64 returns the numeric form of the value. ok is false for
// non-numeric types.
func (v Value) Float64() (f float64, ok bool) {
	if !v.typ.Numeric() {
		return 0, false
	}
	return v.num, true
}

// Text returns the canonical VAL attribute form of the value.
func (v Value) Text() string {
	if !v.typ.Numeric() {
		return v.str
	}
	switch v.typ {
	case TypeFloat, TypeDouble:
		return strconv.FormatFloat(v.num, 'f', 2, 64)
	default:
		return strconv.FormatInt(int64(v.num), 10)
	}
}

// String implements fmt.Stringer; identical to Text.
func (v Value) String() string { return v.Text() }

// Metric is one measurement at one host, together with its soft-state
// lifetimes. It maps one-to-one onto a METRIC tag in the XML language
// and onto one gmond announce packet on the wire.
type Metric struct {
	Name  string
	Val   Value
	Units string
	Slope Slope

	// TN is the age of the value in seconds: how long ago the
	// originating gmond last updated it.
	TN uint32
	// TMAX is the maximum expected interval between updates. A metric
	// with TN well beyond TMAX is stale; the host heartbeat exceeding
	// its TMAX marks the host down.
	TMAX uint32
	// DMAX is the lifetime in seconds after which a silent metric is
	// deleted from cluster state. Zero means never delete.
	DMAX uint32

	// Source records which subsystem produced the metric (e.g.
	// "gmond", "gmetad"); informational only.
	Source string
}

// HeartbeatName is the reserved metric announced by every gmond to
// signal liveness. Its value is the daemon's start time in Unix
// seconds, so a restart is detectable as a value change.
const HeartbeatName = "heartbeat"

// Heartbeat builds the reserved liveness metric.
func Heartbeat(startTime int64, tmax uint32) Metric {
	return Metric{
		Name:   HeartbeatName,
		Val:    NewUint(uint64(startTime)),
		Units:  "",
		Slope:  SlopeUnspecified,
		TMAX:   tmax,
		Source: "gmond",
	}
}

// Stale reports whether the metric has missed enough update intervals
// to be considered dead. The factor of four mirrors gmond's soft-state
// convention: one lost multicast packet must not flap a host down.
func (m *Metric) Stale() bool {
	return m.TMAX > 0 && m.TN > 4*m.TMAX
}

// Expired reports whether the metric has been silent beyond DMAX and
// should be purged from cluster state entirely.
func (m *Metric) Expired() bool {
	return m.DMAX > 0 && m.TN > m.DMAX
}
