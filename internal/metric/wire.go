package metric

import (
	"errors"
	"fmt"

	"ganglia/internal/xdr"
)

// Wire protocol for gmond announcements.
//
// Every gmond periodically multicasts one Announcement per metric it
// owns. Each announcement is a single self-contained XDR message so a
// newly started listener can reconstruct full cluster state with no
// registration step — the soft-state, leaderless design of paper §1.

// announceMagic guards against cross-protocol packets on the channel.
const announceMagic uint32 = 0x67616e67 // "gang"

// wireVersion is bumped whenever the announcement layout changes.
const wireVersion uint32 = 1

// ErrBadPacket is returned by DecodeAnnouncement for packets that are
// not gmond announcements.
var ErrBadPacket = errors.New("metric: not a gmond announcement")

// Announcement is one metric from one host as it travels over the
// multicast channel.
type Announcement struct {
	// Host is the originating node's name.
	Host string
	// IP is the originating node's address in text form (may be empty
	// on in-memory transports).
	IP string
	// Metric carries the measurement itself. TN is not transmitted:
	// receivers compute freshness from their own arrival clock, which
	// keeps the protocol robust to clock skew between nodes.
	Metric Metric
}

// AppendEncode encodes a into buf (which may be nil) and returns the
// extended slice. The encoding is a fixed field sequence, not
// self-describing, matching gmond's compact packets.
func (a *Announcement) AppendEncode(buf []byte) []byte {
	e := xdr.NewEncoder(buf)
	e.Uint32(announceMagic)
	e.Uint32(wireVersion)
	e.String(a.Host)
	e.String(a.IP)
	e.String(a.Metric.Name)
	e.Uint32(uint32(a.Metric.Val.Type()))
	e.String(a.Metric.Val.Text())
	e.String(a.Metric.Units)
	e.Uint32(uint32(a.Metric.Slope))
	e.Uint32(a.Metric.TMAX)
	e.Uint32(a.Metric.DMAX)
	e.String(a.Metric.Source)
	return e.Bytes()
}

// Encode returns a freshly allocated encoding of a.
func (a *Announcement) Encode() []byte { return a.AppendEncode(nil) }

// DecodeAnnouncement parses a packet from the multicast channel.
func DecodeAnnouncement(pkt []byte) (Announcement, error) {
	var a Announcement
	d := xdr.NewDecoder(pkt)
	magic, err := d.Uint32()
	if err != nil {
		return a, fmt.Errorf("%w: %v", ErrBadPacket, err)
	}
	if magic != announceMagic {
		return a, fmt.Errorf("%w: bad magic %#x", ErrBadPacket, magic)
	}
	ver, err := d.Uint32()
	if err != nil {
		return a, err
	}
	if ver != wireVersion {
		return a, fmt.Errorf("%w: unsupported version %d", ErrBadPacket, ver)
	}
	if a.Host, err = d.String(); err != nil {
		return a, err
	}
	if a.IP, err = d.String(); err != nil {
		return a, err
	}
	if a.Metric.Name, err = d.String(); err != nil {
		return a, err
	}
	typ, err := d.Uint32()
	if err != nil {
		return a, err
	}
	val, err := d.String()
	if err != nil {
		return a, err
	}
	a.Metric.Val = NewTyped(Type(typ), val)
	if a.Metric.Units, err = d.String(); err != nil {
		return a, err
	}
	slope, err := d.Uint32()
	if err != nil {
		return a, err
	}
	a.Metric.Slope = Slope(slope)
	if a.Metric.TMAX, err = d.Uint32(); err != nil {
		return a, err
	}
	if a.Metric.DMAX, err = d.Uint32(); err != nil {
		return a, err
	}
	if a.Metric.Source, err = d.String(); err != nil {
		return a, err
	}
	if a.Metric.Source == "" {
		a.Metric.Source = "gmond"
	}
	return a, nil
}
