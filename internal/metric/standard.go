package metric

// Definition describes one of the standard metrics a gmond collects:
// its static schema plus the default collection and lifetime intervals.
// The paper notes each node reports "about 30 monitoring metrics, which
// can also be user-defined" (fig 3); this table is that standard set,
// mirroring the classic gmond 2.5 metric schedule.
type Definition struct {
	Name string
	Type Type
	// Units is the human-readable unit string carried in the XML.
	Units string
	Slope Slope
	// CollectEvery is the default collection interval in seconds.
	CollectEvery uint32
	// TMAX is the maximum expected announce interval in seconds.
	TMAX uint32
	// DMAX is the delete-after interval in seconds (0 = never).
	DMAX uint32
	// ValueThreshold is the minimum relative change that forces an
	// announce before TMAX elapses. Zero means announce on schedule
	// only.
	ValueThreshold float64
}

// Standard is the built-in metric table. The order is stable so that
// reports and tests are deterministic.
var Standard = []Definition{
	{Name: "boottime", Type: TypeUint32, Units: "s", Slope: SlopeZero, CollectEvery: 1200, TMAX: 1200, DMAX: 0},
	{Name: "bytes_in", Type: TypeFloat, Units: "bytes/sec", Slope: SlopeBoth, CollectEvery: 40, TMAX: 300, DMAX: 0, ValueThreshold: 0.05},
	{Name: "bytes_out", Type: TypeFloat, Units: "bytes/sec", Slope: SlopeBoth, CollectEvery: 40, TMAX: 300, DMAX: 0, ValueThreshold: 0.05},
	{Name: "cpu_aidle", Type: TypeFloat, Units: "%", Slope: SlopeBoth, CollectEvery: 950, TMAX: 3800, DMAX: 0, ValueThreshold: 0.05},
	{Name: "cpu_idle", Type: TypeFloat, Units: "%", Slope: SlopeBoth, CollectEvery: 20, TMAX: 90, DMAX: 0, ValueThreshold: 0.05},
	{Name: "cpu_nice", Type: TypeFloat, Units: "%", Slope: SlopeBoth, CollectEvery: 20, TMAX: 90, DMAX: 0, ValueThreshold: 0.05},
	{Name: "cpu_num", Type: TypeUint16, Units: "CPUs", Slope: SlopeZero, CollectEvery: 1200, TMAX: 1200, DMAX: 0},
	{Name: "cpu_speed", Type: TypeUint32, Units: "MHz", Slope: SlopeZero, CollectEvery: 1200, TMAX: 1200, DMAX: 0},
	{Name: "cpu_system", Type: TypeFloat, Units: "%", Slope: SlopeBoth, CollectEvery: 20, TMAX: 90, DMAX: 0, ValueThreshold: 0.05},
	{Name: "cpu_user", Type: TypeFloat, Units: "%", Slope: SlopeBoth, CollectEvery: 20, TMAX: 90, DMAX: 0, ValueThreshold: 0.05},
	{Name: "cpu_wio", Type: TypeFloat, Units: "%", Slope: SlopeBoth, CollectEvery: 20, TMAX: 90, DMAX: 0, ValueThreshold: 0.05},
	{Name: "disk_free", Type: TypeDouble, Units: "GB", Slope: SlopeBoth, CollectEvery: 40, TMAX: 180, DMAX: 0, ValueThreshold: 0.02},
	{Name: "disk_total", Type: TypeDouble, Units: "GB", Slope: SlopeZero, CollectEvery: 1200, TMAX: 1200, DMAX: 0},
	{Name: "load_fifteen", Type: TypeFloat, Units: "", Slope: SlopeBoth, CollectEvery: 80, TMAX: 950, DMAX: 0, ValueThreshold: 0.05},
	{Name: "load_five", Type: TypeFloat, Units: "", Slope: SlopeBoth, CollectEvery: 40, TMAX: 325, DMAX: 0, ValueThreshold: 0.05},
	{Name: "load_one", Type: TypeFloat, Units: "", Slope: SlopeBoth, CollectEvery: 20, TMAX: 70, DMAX: 0, ValueThreshold: 0.05},
	{Name: "machine_type", Type: TypeString, Units: "", Slope: SlopeZero, CollectEvery: 1200, TMAX: 1200, DMAX: 0},
	{Name: "mem_buffers", Type: TypeUint32, Units: "KB", Slope: SlopeBoth, CollectEvery: 40, TMAX: 180, DMAX: 0, ValueThreshold: 0.05},
	{Name: "mem_cached", Type: TypeUint32, Units: "KB", Slope: SlopeBoth, CollectEvery: 40, TMAX: 180, DMAX: 0, ValueThreshold: 0.05},
	{Name: "mem_free", Type: TypeUint32, Units: "KB", Slope: SlopeBoth, CollectEvery: 40, TMAX: 180, DMAX: 0, ValueThreshold: 0.05},
	{Name: "mem_shared", Type: TypeUint32, Units: "KB", Slope: SlopeBoth, CollectEvery: 40, TMAX: 180, DMAX: 0, ValueThreshold: 0.05},
	{Name: "mem_total", Type: TypeUint32, Units: "KB", Slope: SlopeZero, CollectEvery: 1200, TMAX: 1200, DMAX: 0},
	{Name: "mtu", Type: TypeUint32, Units: "", Slope: SlopeBoth, CollectEvery: 1200, TMAX: 1200, DMAX: 0},
	{Name: "os_name", Type: TypeString, Units: "", Slope: SlopeZero, CollectEvery: 1200, TMAX: 1200, DMAX: 0},
	{Name: "os_release", Type: TypeString, Units: "", Slope: SlopeZero, CollectEvery: 1200, TMAX: 1200, DMAX: 0},
	{Name: "part_max_used", Type: TypeFloat, Units: "%", Slope: SlopeBoth, CollectEvery: 180, TMAX: 950, DMAX: 0, ValueThreshold: 0.02},
	{Name: "pkts_in", Type: TypeFloat, Units: "packets/sec", Slope: SlopeBoth, CollectEvery: 40, TMAX: 300, DMAX: 0, ValueThreshold: 0.05},
	{Name: "pkts_out", Type: TypeFloat, Units: "packets/sec", Slope: SlopeBoth, CollectEvery: 40, TMAX: 300, DMAX: 0, ValueThreshold: 0.05},
	{Name: "proc_run", Type: TypeUint32, Units: "", Slope: SlopeBoth, CollectEvery: 80, TMAX: 950, DMAX: 0},
	{Name: "proc_total", Type: TypeUint32, Units: "", Slope: SlopeBoth, CollectEvery: 80, TMAX: 950, DMAX: 0, ValueThreshold: 0.05},
	{Name: "swap_free", Type: TypeUint32, Units: "KB", Slope: SlopeBoth, CollectEvery: 40, TMAX: 180, DMAX: 0, ValueThreshold: 0.05},
	{Name: "swap_total", Type: TypeUint32, Units: "KB", Slope: SlopeZero, CollectEvery: 1200, TMAX: 1200, DMAX: 0},
}

// Lookup returns the Definition for a standard metric name, or nil if
// the name is not in the standard table (a user-defined metric).
func Lookup(name string) *Definition {
	for i := range Standard {
		if Standard[i].Name == name {
			return &Standard[i]
		}
	}
	return nil
}

// NumericStandard returns the names of all standard metrics whose type
// participates in additive summaries, in table order.
func NumericStandard() []string {
	var names []string
	for i := range Standard {
		if Standard[i].Type.Numeric() {
			names = append(names, Standard[i].Name)
		}
	}
	return names
}
