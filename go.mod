module ganglia

go 1.22
